//! Network-wide top-k collection.
//!
//! The paper's footnote 2 describes the deployment HeavyKeeper targets:
//! each switch runs a sketch over its own traffic and periodically ships
//! it to a central collector, which combines the per-switch views into a
//! network-wide top-k and the switches reset for the next period.
//!
//! [`Collector`] implements the collector side. Switches submit either
//! whole sketches (merged via [`crate::merge`]) or plain top-k reports
//! (flow, estimate) when shipping the full sketch is too expensive.
//! Because one packet traverses several switches, the collector must be
//! told how to reconcile counts for the same flow seen at different
//! vantage points — [`AggregationRule`]:
//!
//! * [`AggregationRule::Max`] — every switch on a flow's path counts all
//!   of its packets, so the network-wide size is the *maximum* of the
//!   per-switch counts (the right rule for a single administrative domain
//!   where paths overlap). `Max` also preserves no-over-estimation: each
//!   input is a lower bound on the flow's true size, hence so is the max.
//! * [`AggregationRule::Sum`] — vantage points observe *disjoint* traffic
//!   (e.g. per-rack ToR uplinks), so sizes add.
//!
//! # Examples
//!
//! ```
//! use heavykeeper::collector::{AggregationRule, Collector};
//! use heavykeeper::{HkConfig, ParallelTopK};
//! use hk_common::TopKAlgorithm;
//!
//! let cfg = HkConfig::builder().width(512).k(4).seed(7).build();
//! let mut sw1 = ParallelTopK::<u64>::new(cfg.clone());
//! let mut sw2 = ParallelTopK::<u64>::new(cfg);
//! for i in 0..1000 {
//!     sw1.insert(&1); // flow 1 crosses both switches
//!     sw2.insert(&1);
//!     if i % 2 == 0 {
//!         sw2.insert(&2); // flow 2: only at switch 2, half the size
//!     }
//! }
//! let mut coll = Collector::new(4, AggregationRule::Max);
//! coll.submit_report(sw1.top_k());
//! coll.submit_report(sw2.top_k());
//! let top = coll.top_k();
//! assert_eq!(top[0].0, 1);
//! assert!(top[0].1 <= 1000, "Max rule never over-estimates");
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Mutex, PoisonError};

use crate::merge::{MergeError, MergeMode};
use crate::parallel::ParallelTopK;
use crate::sliding::SlidingTopK;
use crate::wire::{DirtyPatch, FrameKind, WindowFrame, WireError};
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

/// Why a wire submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The payload did not decode.
    Wire(WireError),
    /// The decoded sketch is not merge-compatible with earlier ones.
    Merge(MergeError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire decode failed: {e}"),
            Self::Merge(e) => write!(f, "merge failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What a window-frame submission did (the protocol's normal outcomes —
/// duplicates and gaps are expected under a lossy transport, not
/// errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSubmit {
    /// A full snapshot (re)installed the switch's ring replica.
    Snapshot,
    /// A delta advanced the replica in sequence (possibly draining
    /// buffered out-of-order deltas behind it).
    Applied,
    /// The frame's rotation was at or below the replica's — already
    /// incorporated; dropped idempotently.
    Duplicate,
    /// The delta is ahead of the replica (a rotation-id gap): it was
    /// buffered, and the switch is flagged in
    /// [`Collector::resync_needed`] until a full snapshot arrives or
    /// the missing deltas fill the gap.
    ResyncRequested,
}

/// Why a window-frame submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSubmitError {
    /// The frame did not decode (truncated, corrupt, bad CRC, …).
    Wire(WireError),
    /// The frame conflicts with the switch's established ring (window
    /// size or sketch configuration changed mid-stream).
    Mismatch {
        /// The submitting switch.
        switch: u64,
    },
    /// A delta arrived for a switch that never sent a full snapshot;
    /// the switch is flagged for resync.
    NoSnapshot {
        /// The submitting switch.
        switch: u64,
    },
}

impl std::fmt::Display for WindowSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "window frame decode failed: {e}"),
            Self::Mismatch { switch } => {
                write!(f, "switch {switch}: frame conflicts with established ring")
            }
            Self::NoSnapshot { switch } => {
                write!(f, "switch {switch}: delta before any full snapshot")
            }
        }
    }
}

impl std::error::Error for WindowSubmitError {}

/// An out-of-order advance buffered until the gap before it fills:
/// either a plain delta's whole epoch, or a dirty patch that must wait
/// for its baseline (the epoch closed by `rotation - 1`) to become the
/// replica's newest closed epoch before it can be reconstructed.
#[derive(Debug, Clone)]
enum PendingDelta<K: FlowKey> {
    /// A [`FrameKind::Delta`] record: the closed epoch itself.
    Epoch(Box<ParallelTopK<K>>),
    /// A [`FrameKind::Dirty`] record: changed buckets only, applied
    /// against the then-current baseline at drain time.
    Patch(DirtyPatch<K>),
}

/// One switch's reassembled sliding window at the collector.
#[derive(Debug, Clone)]
struct SwitchWindow<K: FlowKey> {
    /// The reassembled ring: bit-identical to the switch's own
    /// [`SlidingTopK`] as of the last in-sequence frame.
    replica: SlidingTopK<K>,
    /// Out-of-order deltas buffered by rotation id, waiting for the
    /// gap before them to fill (bounded by the window size — anything
    /// older is covered by the resync snapshot anyway).
    pending: BTreeMap<u64, PendingDelta<K>>,
    /// Highest rotation id this switch was ever *observed* at (from any
    /// frame, including buffered-then-dropped deltas). The replica is
    /// known-stale — and the switch resync-flagged — exactly while
    /// `replica.rotations() < max_seen`; deriving the flag from this
    /// (rather than from the pending buffer emptying) means a gap delta
    /// discarded by the bounded buffer can never silently clear it.
    max_seen: u64,
    /// Collector-clock tick of the last frame received from this switch
    /// (any frame — even a duplicate proves the switch is alive).
    /// Compared against the collector's running clock by
    /// [`Collector::stale_switches`] to spot switches gone silent.
    last_progress: u64,
}

impl<K: FlowKey> SwitchWindow<K> {
    /// True while a rotation was observed that the replica has not
    /// incorporated.
    fn needs_resync(&self) -> bool {
        self.replica.rotations() < self.max_seen
    }
}

/// How per-switch counts for the same flow combine network-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationRule {
    /// Overlapping vantage points: take the maximum count. Preserves the
    /// no-over-estimation property of the inputs.
    #[default]
    Max,
    /// Disjoint vantage points: counts add.
    Sum,
}

/// Central collector aggregating per-switch top-k evidence.
///
/// Works from plain `(flow, estimate)` reports; for whole-sketch
/// submission see [`Collector::submit_sketch`], which folds the sketch's
/// own top-k through the same path after merging the bucket arrays into
/// an accumulated network-wide sketch.
///
/// For *windowed* deployments the collector additionally reassembles
/// each switch's sliding-window epoch ring from wire-v2 frames
/// ([`Collector::submit_window_frame`]): full snapshots install a
/// per-switch [`SlidingTopK`] replica, steady-state deltas advance it
/// one closed epoch per rotation, and [`Collector::window_top_k`]
/// answers the network-wide windowed top-k by merging live epochs
/// across switches through the [`crate::merge`] machinery. The windowed
/// plane is independent of the tumbling report/sketch path (and of
/// [`Collector::end_period`]) — a sliding window has no period to end.
#[derive(Debug)]
pub struct Collector<K: FlowKey> {
    rule: AggregationRule,
    k: usize,
    counts: HashMap<K, u64>,
    /// Network-wide merged sketch, present once a sketch was submitted.
    merged: Option<ParallelTopK<K>>,
    reports: usize,
    /// Per-switch reassembled sliding windows, keyed by switch id.
    windows: HashMap<u64, SwitchWindow<K>>,
    /// Switches flagged for resync before any snapshot arrived (no
    /// [`SwitchWindow`] entry exists yet to carry the flag).
    resync_no_snapshot: HashSet<u64>,
    /// Logical clock: ticks once per window-frame submission (from any
    /// switch). Staleness is measured against it — "idle for `n`" means
    /// "`n` frames arrived fleet-wide since this switch last spoke",
    /// which needs no wall clock and stays deterministic in tests.
    clock: u64,
    /// Reusable query scratch: the candidate buffer and dedup set keep
    /// their capacity across [`Collector::top_k`] /
    /// [`Collector::window_top_k`] calls instead of reallocating per
    /// query (same pattern as [`SlidingTopK`]'s top-k scratch). A
    /// `Mutex` — not `RefCell` — so the collector stays `Sync`;
    /// uncontended on the single-owner path.
    scratch: Mutex<QueryScratch<K>>,
    /// Window frames that participated in the protocol (snapshot,
    /// delta, dirty, duplicate or buffered alike) — observability.
    window_frames_accepted: u64,
    /// Window frames the protocol refused (wire errors, ring
    /// mismatches, deltas before any snapshot).
    window_frames_rejected: u64,
}

/// The per-query allocations of the top-k paths, retained across calls.
#[derive(Debug)]
struct QueryScratch<K> {
    seen: HashSet<K>,
    candidates: Vec<(K, u64)>,
}

impl<K> Default for QueryScratch<K> {
    fn default() -> Self {
        Self {
            seen: HashSet::new(),
            candidates: Vec::new(),
        }
    }
}

impl<K: FlowKey> Clone for Collector<K> {
    fn clone(&self) -> Self {
        Self {
            rule: self.rule,
            k: self.k,
            counts: self.counts.clone(),
            merged: self.merged.clone(),
            reports: self.reports,
            windows: self.windows.clone(),
            resync_no_snapshot: self.resync_no_snapshot.clone(),
            clock: self.clock,
            // Scratch is cheap to refill; a clone starts cold.
            scratch: Mutex::new(QueryScratch::default()),
            window_frames_accepted: self.window_frames_accepted,
            window_frames_rejected: self.window_frames_rejected,
        }
    }
}

impl<K: FlowKey> Collector<K> {
    /// Creates a collector reporting the top `k` flows network-wide.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, rule: AggregationRule) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            rule,
            k,
            counts: HashMap::new(),
            merged: None,
            reports: 0,
            windows: HashMap::new(),
            resync_no_snapshot: HashSet::new(),
            clock: 0,
            scratch: Mutex::new(QueryScratch::default()),
            window_frames_accepted: 0,
            window_frames_rejected: 0,
        }
    }

    /// Number of submissions (reports + sketches) so far this period.
    pub fn reports(&self) -> usize {
        self.reports
    }

    /// Lifetime window frames that participated in the reassembly
    /// protocol (duplicates and gap-buffered deltas included).
    pub fn window_frames_accepted(&self) -> u64 {
        self.window_frames_accepted
    }

    /// Lifetime window frames refused outright — undecodable bytes,
    /// ring mismatches, or deltas arriving before any snapshot.
    pub fn window_frames_rejected(&self) -> u64 {
        self.window_frames_rejected
    }

    /// Submits one switch's top-k report for this period.
    pub fn submit_report(&mut self, report: Vec<(K, u64)>) {
        self.reports += 1;
        for (key, est) in report {
            let slot = self.counts.entry(key).or_insert(0);
            *slot = match self.rule {
                AggregationRule::Max => (*slot).max(est),
                AggregationRule::Sum => slot.saturating_add(est),
            };
        }
    }

    /// Submits one switch's *whole sketch* for this period. The first
    /// sketch seeds the network-wide merged sketch; later ones must be
    /// merge-compatible with it (same seed/width/arrays/field widths).
    ///
    /// The bucket-level merge follows the collector's aggregation rule:
    /// [`AggregationRule::Sum`] adds matching counts (disjoint vantage
    /// points), [`AggregationRule::Max`] takes the maximum (overlapping
    /// paths — summing would double-count shared packets).
    pub fn submit_sketch(&mut self, sketch: &ParallelTopK<K>) -> Result<(), MergeError> {
        let mode = match self.rule {
            AggregationRule::Max => MergeMode::Max,
            AggregationRule::Sum => MergeMode::Sum,
        };
        match &mut self.merged {
            None => {
                self.merged = Some(sketch.clone());
            }
            Some(acc) => acc.merge_from_with(sketch, mode)?,
        }
        self.submit_report(sketch.top_k());
        Ok(())
    }

    /// Submits a sketch shipped over the wire
    /// ([`ParallelTopK::to_wire`]) — the full footnote-2 hop: switch
    /// serializes, network carries the bytes, collector decodes and
    /// merges.
    pub fn submit_wire(&mut self, payload: &[u8]) -> Result<(), SubmitError> {
        let sketch = ParallelTopK::<K>::from_wire(payload).map_err(SubmitError::Wire)?;
        self.submit_sketch(&sketch).map_err(SubmitError::Merge)
    }

    /// The network-wide top-k for the current period, largest first.
    ///
    /// Flow estimates combine the reported evidence under the
    /// aggregation rule with (when sketches were submitted) the merged
    /// sketch's own estimate.
    ///
    /// The candidate buffer is scratch retained across calls — a
    /// collector polled every period stops allocating per query.
    pub fn top_k(&self) -> Vec<(K, u64)> {
        // Scratch is cleared before use — poison cannot leak state.
        let mut scratch = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        let candidates = &mut scratch.candidates;
        candidates.clear();
        candidates.extend(self.counts.iter().map(|(key, &c)| {
            // The merged sketch (built with the rule's merge mode) is
            // one more lower bound on the flow's network-wide size;
            // take the strongest evidence.
            let est = match &self.merged {
                Some(m) => c.max(m.query(key)),
                None => c,
            };
            (*key, est)
        }));
        candidates.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        candidates.truncate(self.k);
        // The caller owns its report; only this exact-size copy leaves.
        candidates.clone()
    }

    /// Ends the period: returns this period's top-k and clears the
    /// tumbling state (switch sketches reset on their side, paper
    /// footnote 2). Reassembled sliding windows are untouched — they
    /// have no period boundary; they advance by rotation.
    pub fn end_period(&mut self) -> Vec<(K, u64)> {
        let out = self.top_k();
        self.counts.clear();
        self.merged = None;
        self.reports = 0;
        out
    }

    // -- The windowed (wire v2) plane -----------------------------------

    /// Submits one windowed telemetry frame
    /// ([`SlidingTopK::export_frame`] / [`SlidingTopK::export_delta`]
    /// bytes) and reassembles the submitting switch's epoch ring.
    ///
    /// * A **full** frame installs (or re-anchors) the switch's
    ///   [`SlidingTopK`] replica at the frame's rotation and clears any
    ///   resync flag; a stale full frame (rotation behind the replica)
    ///   is dropped idempotently.
    /// * A **delta** frame carrying rotation `R` applies when the
    ///   replica stands at `R - 1` ([`SlidingTopK::commit_epoch`]).
    ///   `R` at or below the replica's rotation is a duplicate
    ///   (idempotent drop). `R` further ahead is a **gap**: the delta is
    ///   buffered (so a reordered neighbor can still slot in once the
    ///   gap fills) and the switch is flagged in
    ///   [`Collector::resync_needed`] until a full snapshot arrives.
    /// * A **dirty** frame ([`SlidingTopK::export_dirty`]) follows the
    ///   exact same rotation protocol; its record is a changed-buckets
    ///   patch reconstructed against the replica's newest closed epoch
    ///   ([`DirtyPatch::apply`]) instead of a whole shipped epoch.
    ///
    /// Returns what the frame did; errors are reserved for frames that
    /// cannot participate in the protocol at all (undecodable bytes,
    /// ring mismatches, deltas before any snapshot).
    pub fn submit_window_frame(
        &mut self,
        payload: &[u8],
    ) -> Result<WindowSubmit, WindowSubmitError> {
        let frame = match WindowFrame::<K>::decode(payload) {
            Ok(f) => f,
            Err(e) => {
                self.window_frames_rejected += 1;
                return Err(WindowSubmitError::Wire(e));
            }
        };
        self.submit_window(frame)
    }

    /// [`Collector::submit_window_frame`] over an already-decoded frame.
    pub fn submit_window(
        &mut self,
        frame: WindowFrame<K>,
    ) -> Result<WindowSubmit, WindowSubmitError> {
        let out = self.submit_window_inner(frame);
        match &out {
            Ok(_) => self.window_frames_accepted += 1,
            Err(_) => self.window_frames_rejected += 1,
        }
        out
    }

    fn submit_window_inner(
        &mut self,
        frame: WindowFrame<K>,
    ) -> Result<WindowSubmit, WindowSubmitError> {
        let switch = frame.switch_id;
        // Any decodable frame naming the switch proves it alive, so the
        // liveness stamp lands before the protocol decides what the
        // frame does (even a duplicate resets the idle counter).
        self.clock += 1;
        let now = self.clock;
        match frame.kind {
            FrameKind::Full => {
                let window = frame
                    .into_window()
                    .expect("full frames always convert to a window");
                if let Some(entry) = self.windows.get_mut(&switch) {
                    entry.last_progress = now;
                    // Array counts are excluded from the ring-identity
                    // check: Section III-F expansion grows them
                    // per-epoch at runtime.
                    if entry.replica.window() != window.window()
                        || !crate::wire::same_ring_config(entry.replica.config(), window.config())
                    {
                        return Err(WindowSubmitError::Mismatch { switch });
                    }
                    if window.rotations() < entry.replica.rotations() {
                        // A reordered, stale snapshot must not rewind
                        // the ring.
                        return Ok(WindowSubmit::Duplicate);
                    }
                    entry.max_seen = entry.max_seen.max(window.rotations());
                    entry.replica = window;
                    Self::drain_pending(entry);
                } else {
                    self.resync_no_snapshot.remove(&switch);
                    self.windows.insert(
                        switch,
                        SwitchWindow {
                            max_seen: window.rotations(),
                            replica: window,
                            pending: BTreeMap::new(),
                            last_progress: now,
                        },
                    );
                }
                Ok(WindowSubmit::Snapshot)
            }
            FrameKind::Delta => {
                let Some(entry) = self.windows.get_mut(&switch) else {
                    // No ring to apply the delta to; ask for a snapshot.
                    self.resync_no_snapshot.insert(switch);
                    return Err(WindowSubmitError::NoSnapshot { switch });
                };
                entry.last_progress = now;
                if frame.window != entry.replica.window()
                    || frame.epochs.first().is_some_and(|e| {
                        !crate::wire::same_ring_config(e.config(), entry.replica.config())
                    })
                {
                    return Err(WindowSubmitError::Mismatch { switch });
                }
                let rotation = frame.rotation;
                let epoch = frame
                    .epochs
                    .into_iter()
                    .next()
                    .expect("decode guarantees one epoch per delta");
                let current = entry.replica.rotations();
                if rotation <= current {
                    return Ok(WindowSubmit::Duplicate);
                }
                // Every delta ahead of the replica marks the switch
                // observed at that rotation — even one the bounded
                // buffer below ends up discarding — so the resync flag
                // cannot be cleared until the replica truly catches up.
                entry.max_seen = entry.max_seen.max(rotation);
                if rotation == current + 1 {
                    entry.replica.commit_epoch(epoch);
                    Self::drain_pending(entry);
                    return Ok(WindowSubmit::Applied);
                }
                // Gap: buffer the early delta (bounded by the window —
                // anything a snapshot would supersede may be dropped)
                // and request a resync.
                if entry.pending.len() < entry.replica.window() {
                    entry
                        .pending
                        .insert(rotation, PendingDelta::Epoch(Box::new(epoch)));
                }
                Ok(WindowSubmit::ResyncRequested)
            }
            FrameKind::Dirty => {
                let Some(entry) = self.windows.get_mut(&switch) else {
                    // No ring — and no baseline — to patch; ask for a
                    // snapshot, exactly like a delta before a snapshot.
                    self.resync_no_snapshot.insert(switch);
                    return Err(WindowSubmitError::NoSnapshot { switch });
                };
                entry.last_progress = now;
                let patch = frame.patch.expect("decode guarantees a patch");
                // A dirty frame carries no epoch config (the patch is
                // config-free by construction); ring identity is checked
                // on the geometry it does carry. Seed/decay mismatches
                // from an adversarial same-geometry stream fail at
                // apply-time validation or in the CRC/rotation protocol.
                if frame.window != entry.replica.window()
                    || patch.width() != entry.replica.config().width
                {
                    return Err(WindowSubmitError::Mismatch { switch });
                }
                let rotation = frame.rotation;
                let current = entry.replica.rotations();
                if rotation <= current {
                    return Ok(WindowSubmit::Duplicate);
                }
                // Same observed-rotation bookkeeping as plain deltas:
                // even a patch the bounded buffer drops keeps the
                // resync flag honest.
                entry.max_seen = entry.max_seen.max(rotation);
                if rotation == current + 1 {
                    let applied = Self::apply_patch(entry, &patch);
                    match applied {
                        Ok(epoch) => {
                            entry.replica.commit_epoch(epoch);
                            Self::drain_pending(entry);
                            return Ok(WindowSubmit::Applied);
                        }
                        Err(e) => return Err(WindowSubmitError::Wire(e)),
                    }
                }
                if entry.pending.len() < entry.replica.window() {
                    entry.pending.insert(rotation, PendingDelta::Patch(patch));
                }
                Ok(WindowSubmit::ResyncRequested)
            }
        }
    }

    /// Reconstructs the epoch a dirty patch describes against the
    /// replica's newest closed epoch — the epoch closed by
    /// `rotation - 1`, bit-exact by the protocol invariant, which is
    /// exactly the shadow snapshot the exporter diffed against.
    fn apply_patch(
        entry: &SwitchWindow<K>,
        patch: &DirtyPatch<K>,
    ) -> Result<ParallelTopK<K>, WireError> {
        let base = entry.replica.epoch_iter().rev().nth(1);
        patch.apply(base, entry.replica.config())
    }

    /// Applies buffered out-of-order deltas that have become
    /// in-sequence. The resync flag clears by itself once the replica's
    /// rotation reaches the highest one ever observed
    /// ([`SwitchWindow::needs_resync`]) — never merely because the
    /// buffer emptied.
    fn drain_pending(entry: &mut SwitchWindow<K>) {
        loop {
            let current = entry.replica.rotations();
            // Drop anything the replica has already covered.
            while let Some((&r, _)) = entry.pending.iter().next() {
                if r <= current {
                    entry.pending.remove(&r);
                } else {
                    break;
                }
            }
            match entry.pending.remove(&(current + 1)) {
                Some(PendingDelta::Epoch(epoch)) => entry.replica.commit_epoch(*epoch),
                Some(PendingDelta::Patch(patch)) => {
                    // The patch's baseline is the epoch closed by
                    // `current` — the replica's newest closed epoch at
                    // this point, however the gap was healed.
                    let applied = Self::apply_patch(entry, &patch);
                    match applied {
                        Ok(epoch) => entry.replica.commit_epoch(epoch),
                        // A buffered patch that fails against the
                        // healed baseline is dropped: `max_seen` keeps
                        // the switch resync-flagged, so a snapshot
                        // supersedes it.
                        Err(_) => break,
                    }
                }
                None => break,
            }
        }
    }

    /// Switch ids whose windows need a full snapshot (a rotation was
    /// observed that the replica has not incorporated, or a delta
    /// arrived before any snapshot), ascending. The deployment answers
    /// by shipping [`SlidingTopK::export_frame`] for each.
    pub fn resync_needed(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .windows
            .iter()
            .filter(|(_, w)| w.needs_resync())
            .map(|(&id, _)| id)
            .chain(self.resync_no_snapshot.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Switch ids that have gone silent: more than `max_idle`
    /// window-frame submissions (fleet-wide, the collector's logical
    /// clock) have arrived since the switch last sent any frame.
    /// Ascending. A stale switch's replica keeps answering queries with
    /// its last-known window — this is how the operator learns that
    /// window is no longer fresh (a dead shard's exporter, a partitioned
    /// switch) and decides to wait, resync, or
    /// [`Collector::evict_switch`] it.
    pub fn stale_switches(&self, max_idle: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .windows
            .iter()
            .filter(|(_, w)| self.clock.saturating_sub(w.last_progress) > max_idle)
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Drops one switch from the windowed plane entirely: its replica,
    /// buffered deltas, and resync flags. Its flows vanish from
    /// [`Collector::window_top_k`] at the next query — the windowed
    /// analogue of the sharded engine dropping a dead shard's state.
    /// Returns `true` when the switch was known. (The tumbling
    /// report/sketch plane is untouched: those submissions are already
    /// folded in and carry no per-switch state to evict.)
    pub fn evict_switch(&mut self, switch: u64) -> bool {
        let had_window = self.windows.remove(&switch).is_some();
        let had_flag = self.resync_no_snapshot.remove(&switch);
        had_window || had_flag
    }

    /// The reassembled window replica of one switch, if it has sent a
    /// snapshot. Bit-identical to the switch's own [`SlidingTopK`] as
    /// of the last in-sequence frame.
    pub fn switch_window(&self, switch: u64) -> Option<&SlidingTopK<K>> {
        self.windows.get(&switch).map(|w| &w.replica)
    }

    /// Switch ids with an installed window replica, ascending.
    pub fn window_switches(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.windows.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Merges the live-window epochs of every reassembled switch into
    /// one network-wide [`SlidingTopK`], epoch-aligned from the newest
    /// backwards, under the collector's aggregation rule
    /// ([`MergeMode::Sum`] for disjoint vantage points,
    /// [`MergeMode::Max`] for overlapping paths) — the existing sketch
    /// merge machinery applied per epoch.
    ///
    /// Returns `None` when no window was submitted, or `Err` when the
    /// switches' rings are not merge-compatible (different seeds /
    /// geometries).
    pub fn merged_window(&self) -> Result<Option<SlidingTopK<K>>, MergeError> {
        let mode = match self.rule {
            AggregationRule::Max => MergeMode::Max,
            AggregationRule::Sum => MergeMode::Sum,
        };
        let mut switches: Vec<&SwitchWindow<K>> = Vec::with_capacity(self.windows.len());
        {
            // Deterministic merge order — ascending switch id (HashMap
            // iteration order is not deterministic, and the Sum-conflict
            // tie rule makes merge results order-sensitive).
            let mut ids: Vec<(&u64, &SwitchWindow<K>)> = self.windows.iter().collect();
            ids.sort_by_key(|(&id, _)| id);
            switches.extend(ids.into_iter().map(|(_, w)| w));
        }
        let Some(deepest) = switches.iter().map(|w| w.replica.live_epochs()).max() else {
            return Ok(None);
        };
        // Align epochs on their distance from the newest: switches
        // rotate in phase in a windowed deployment, so "i rotations
        // ago" names the same period everywhere; switches still filling
        // their ring simply contribute to fewer epochs.
        let mut merged_newest_first: Vec<ParallelTopK<K>> = Vec::with_capacity(deepest);
        for back in 0..deepest {
            let mut acc: Option<ParallelTopK<K>> = None;
            for w in &switches {
                let live = w.replica.live_epochs();
                if back >= live {
                    continue;
                }
                let epoch = w
                    .replica
                    .epoch_iter()
                    .nth(live - 1 - back)
                    .expect("index within live epochs");
                match &mut acc {
                    None => acc = Some(epoch.clone()),
                    Some(a) => a.merge_from_with(epoch, mode)?,
                }
            }
            merged_newest_first.push(acc.expect("deepest covers at least one switch"));
        }
        merged_newest_first.reverse();
        let cfg = merged_newest_first
            .last()
            .expect("at least one epoch")
            .config()
            .clone();
        let window = switches
            .iter()
            .map(|w| w.replica.window())
            .max()
            .expect("at least one switch");
        let rotations = switches
            .iter()
            .map(|w| w.replica.rotations())
            .max()
            .expect("at least one switch");
        Ok(Some(SlidingTopK::from_epochs(
            cfg,
            window,
            rotations,
            merged_newest_first,
        )))
    }

    /// The network-wide top-k over the *live windows* of every
    /// reassembled switch, largest first.
    ///
    /// Candidates are the union of per-switch window top-k sets
    /// (deduplicated through the retained scratch); each candidate's
    /// estimate combines the per-switch window queries under the
    /// aggregation rule with (when the rings are merge-compatible) the
    /// [`Collector::merged_window`] estimate — both are lower bounds on
    /// the flow's true window count, so the combination never
    /// over-estimates.
    pub fn window_top_k(&self) -> Vec<(K, u64)> {
        // The merged ring catches cross-switch elephants that no single
        // switch reports; incompatible rings fall back to report-level
        // aggregation alone.
        let merged = self.merged_window().ok().flatten();
        let mut switches: Vec<(&u64, &SwitchWindow<K>)> = self.windows.iter().collect();
        switches.sort_by_key(|(&id, _)| id);

        // Scratch is cleared before use — poison cannot leak state.
        let mut scratch = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        let QueryScratch { seen, candidates } = &mut *scratch;
        seen.clear();
        candidates.clear();
        for (_, w) in &switches {
            for (key, _) in w.replica.top_k() {
                if !seen.insert(key) {
                    continue;
                }
                let mut est: u64 = match self.rule {
                    AggregationRule::Max => switches
                        .iter()
                        .map(|(_, sw)| sw.replica.query(&key))
                        .max()
                        .unwrap_or(0),
                    AggregationRule::Sum => switches
                        .iter()
                        .map(|(_, sw)| sw.replica.query(&key))
                        .fold(0u64, u64::saturating_add),
                };
                if let Some(m) = &merged {
                    est = est.max(m.query(&key));
                }
                if est > 0 {
                    candidates.push((key, est));
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.key_bytes().as_slice().cmp(b.0.key_bytes().as_slice()))
        });
        candidates.truncate(self.k);
        candidates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HkConfig;

    fn cfg(seed: u64) -> HkConfig {
        HkConfig::builder()
            .arrays(2)
            .width(512)
            .k(8)
            .seed(seed)
            .build()
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Collector::<u64>::new(0, AggregationRule::Max);
    }

    #[test]
    fn max_rule_takes_maximum() {
        let mut c = Collector::new(2, AggregationRule::Max);
        c.submit_report(vec![(1u64, 100), (2, 50)]);
        c.submit_report(vec![(1u64, 70), (2, 90)]);
        let top = c.top_k();
        assert_eq!(top, vec![(1, 100), (2, 90)]);
    }

    #[test]
    fn sum_rule_adds() {
        let mut c = Collector::new(2, AggregationRule::Sum);
        c.submit_report(vec![(1u64, 100)]);
        c.submit_report(vec![(1u64, 70)]);
        assert_eq!(c.top_k(), vec![(1, 170)]);
    }

    #[test]
    fn sum_rule_saturates() {
        let mut c = Collector::new(1, AggregationRule::Sum);
        c.submit_report(vec![(1u64, u64::MAX - 5)]);
        c.submit_report(vec![(1u64, 100)]);
        assert_eq!(c.top_k(), vec![(1, u64::MAX)]);
    }

    #[test]
    fn truncates_to_k() {
        let mut c = Collector::new(3, AggregationRule::Max);
        c.submit_report((0..10u64).map(|f| (f, 100 - f)).collect());
        let top = c.top_k();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (0, 100));
    }

    #[test]
    fn end_period_clears() {
        let mut c = Collector::new(3, AggregationRule::Max);
        c.submit_report(vec![(1u64, 10)]);
        assert_eq!(c.reports(), 1);
        let period1 = c.end_period();
        assert_eq!(period1.len(), 1);
        assert_eq!(c.reports(), 0);
        assert!(c.top_k().is_empty());
    }

    #[test]
    fn sketch_submission_improves_cross_switch_flow() {
        // Flow 100 is medium at each switch; its per-switch reports may
        // miss it, but the merged sketch still knows it.
        let mk = || ParallelTopK::<u64>::new(cfg(13));
        let (mut sw1, mut sw2) = (mk(), mk());
        for _ in 0..300 {
            for f in 0..8u64 {
                sw1.insert(&f);
                sw2.insert(&(10 + f));
            }
            sw1.insert(&100);
            sw2.insert(&100);
        }
        let mut c = Collector::new(4, AggregationRule::Max);
        c.submit_sketch(&sw1).unwrap();
        c.submit_sketch(&sw2).unwrap();
        // Even if flow 100 misses top-4, the merged sketch must estimate
        // it at up to 600 (300 per switch) and never more.
        let direct = c.merged.as_ref().unwrap().query(&100);
        assert!(direct <= 600, "no over-estimation: {direct}");
        assert!(direct >= 300, "merge should see both halves: {direct}");
    }

    #[test]
    fn wire_submission_end_to_end() {
        let mut sw = ParallelTopK::<u64>::new(cfg(21));
        for _ in 0..1000 {
            sw.insert(&5);
        }
        let payload = sw.to_wire();
        let mut c = Collector::<u64>::new(4, AggregationRule::Max);
        c.submit_wire(&payload).unwrap();
        let top = c.top_k();
        assert_eq!(top[0].0, 5);
        assert!(top[0].1 <= 1000);
        // Garbage payloads error cleanly.
        assert!(matches!(c.submit_wire(b"junk"), Err(SubmitError::Wire(_))));
        // Merge-incompatible payloads error cleanly.
        let other = ParallelTopK::<u64>::new(cfg(22));
        assert!(matches!(
            c.submit_wire(&other.to_wire()),
            Err(SubmitError::Merge(_))
        ));
    }

    #[test]
    fn incompatible_sketch_rejected() {
        let mut c = Collector::new(4, AggregationRule::Max);
        c.submit_sketch(&ParallelTopK::<u64>::new(cfg(1))).unwrap();
        let err = c.submit_sketch(&ParallelTopK::<u64>::new(cfg(2)));
        assert!(err.is_err());
    }

    fn window_cfg(seed: u64) -> HkConfig {
        HkConfig::builder()
            .arrays(2)
            .width(256)
            .k(8)
            .seed(seed)
            .build()
    }

    #[test]
    fn silent_switch_goes_stale_and_can_be_evicted() {
        // Two switches stream deltas; switch 1 goes silent mid-run (its
        // exporter died). The collector must spot the silence through
        // its logical clock, keep serving switch 1's last-known window
        // until told otherwise, and forget it entirely on eviction.
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let mut wins: Vec<SlidingTopK<u64>> =
            (0..2).map(|_| SlidingTopK::new(window_cfg(3), 3)).collect();
        for (s, win) in wins.iter_mut().enumerate() {
            coll.submit_window_frame(&win.export_frame(s as u64, 1000))
                .unwrap();
        }
        let drive = |win: &mut SlidingTopK<u64>, s: u64, p: u64| {
            win.insert_batch(
                &(0..500u64)
                    .map(|i| s * 1000 + p + i % 5)
                    .collect::<Vec<_>>(),
            );
            win.rotate();
            win.export_delta(s, 1000).unwrap()
        };
        // Both alive for 3 periods: nobody is stale even at max_idle 1
        // (each switch speaks every other submission).
        for p in 0..3 {
            for s in 0..2u64 {
                let frame = drive(&mut wins[s as usize], s, p);
                coll.submit_window_frame(&frame).unwrap();
            }
        }
        assert!(coll.stale_switches(1).is_empty());
        // Switch 1 falls silent; switch 0 keeps streaming.
        for p in 3..9 {
            let frame = drive(&mut wins[0], 0, p);
            coll.submit_window_frame(&frame).unwrap();
        }
        assert_eq!(
            coll.stale_switches(3),
            vec![1],
            "6 frames since switch 1 spoke"
        );
        assert!(coll.stale_switches(10).is_empty(), "not yet idle past 10");
        // The stale replica still serves its last-known window...
        assert!(coll.switch_window(1).is_some());
        assert!(coll.window_top_k().iter().any(|&(f, _)| f >= 1000));
        // ...until evicted, after which its flows vanish from queries
        // and it is no longer tracked (so no longer reported stale).
        assert!(coll.evict_switch(1));
        assert!(!coll.evict_switch(1), "second eviction finds nothing");
        assert!(coll.switch_window(1).is_none());
        assert!(coll.stale_switches(3).is_empty());
        assert!(coll.window_top_k().iter().all(|&(f, _)| f < 1000));
        // A returning switch re-anchors with a snapshot like any new one.
        coll.submit_window_frame(&wins[1].export_frame(1, 1000))
            .unwrap();
        assert!(coll.switch_window(1).is_some());
        assert!(
            coll.stale_switches(3).is_empty(),
            "fresh again after resync"
        );
    }

    /// Drives a switch window and the collector through `periods`
    /// periods of delta export, returning the switch for comparison.
    fn run_delta_stream(
        coll: &mut Collector<u64>,
        switch: u64,
        periods: u64,
        drop_rotation: Option<u64>,
    ) -> SlidingTopK<u64> {
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), 3);
        // Initial snapshot anchors the delta stream.
        coll.submit_window_frame(&win.export_frame(switch, 1000))
            .unwrap();
        for p in 0..periods {
            let batch: Vec<u64> = (0..1000u64)
                .map(|i| switch * 1000 + p * 10 + i % 7)
                .collect();
            win.insert_batch(&batch);
            win.rotate();
            let delta = win.export_delta(switch, 1000).unwrap();
            if drop_rotation != Some(win.rotations()) {
                let _ = coll.submit_window_frame(&delta);
            }
        }
        win
    }

    fn assert_replica_matches(coll: &Collector<u64>, switch: u64, win: &SlidingTopK<u64>) {
        let replica = coll.switch_window(switch).expect("replica installed");
        assert_eq!(replica.rotations(), win.rotations());
        assert_eq!(replica.live_epochs(), win.live_epochs());
        for (ea, eb) in replica.epoch_iter().zip(win.epoch_iter()) {
            for j in 0..ea.sketch().arrays() {
                for i in 0..ea.sketch().width() {
                    assert_eq!(ea.sketch().bucket(j, i), eb.sketch().bucket(j, i));
                }
            }
        }
        for f in 0..100u64 {
            let probe = switch * 1000 + f;
            assert_eq!(replica.query(&probe), win.query(&probe), "flow {probe}");
        }
    }

    #[test]
    fn delta_stream_reassembles_bit_exact() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let win = run_delta_stream(&mut coll, 1, 6, None);
        assert!(coll.resync_needed().is_empty());
        assert_replica_matches(&coll, 1, &win);
    }

    #[test]
    fn duplicate_deltas_are_idempotent() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), 3);
        coll.submit_window_frame(&win.export_frame(7, 100)).unwrap();
        win.insert_batch(&vec![42u64; 500]);
        win.rotate();
        let delta = win.export_delta(7, 100).unwrap();
        assert_eq!(
            coll.submit_window_frame(&delta).unwrap(),
            WindowSubmit::Applied
        );
        // The same delta again — and again — changes nothing.
        for _ in 0..3 {
            assert_eq!(
                coll.submit_window_frame(&delta).unwrap(),
                WindowSubmit::Duplicate
            );
        }
        assert_replica_matches(&coll, 7, &win);
    }

    #[test]
    fn rotation_gap_flags_resync_and_snapshot_recovers() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        // Drop the delta of rotation 3: rotation 4's delta opens a gap.
        let win = run_delta_stream(&mut coll, 2, 6, Some(3));
        assert_eq!(coll.resync_needed(), vec![2]);
        // The pre-gap prefix is intact but the ring is behind.
        assert!(coll.switch_window(2).unwrap().rotations() < win.rotations());
        // Resync: a full snapshot re-anchors, clearing the flag and
        // restoring bit-exactness.
        coll.submit_window_frame(&win.export_frame(2, 1000))
            .unwrap();
        assert!(coll.resync_needed().is_empty());
        assert_replica_matches(&coll, 2, &win);
    }

    #[test]
    fn reordered_adjacent_deltas_heal_without_resync() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), 3);
        coll.submit_window_frame(&win.export_frame(9, 100)).unwrap();
        let mut deltas = Vec::new();
        for p in 0..2u64 {
            win.insert_batch(&(0..500u64).map(|i| p * 100 + i % 5).collect::<Vec<_>>());
            win.rotate();
            deltas.push(win.export_delta(9, 100).unwrap());
        }
        // Deliver rotation 2 before rotation 1: the early delta is
        // buffered (resync requested), then the late one drains both
        // and the flag clears — no snapshot needed.
        assert_eq!(
            coll.submit_window_frame(&deltas[1]).unwrap(),
            WindowSubmit::ResyncRequested
        );
        assert_eq!(coll.resync_needed(), vec![9]);
        assert_eq!(
            coll.submit_window_frame(&deltas[0]).unwrap(),
            WindowSubmit::Applied
        );
        assert!(coll.resync_needed().is_empty());
        assert_replica_matches(&coll, 9, &win);
    }

    #[test]
    fn resync_survives_gap_delta_dropped_by_full_buffer() {
        // A gap delta discarded because the pending buffer is full must
        // NOT let a later contiguous drain clear the resync flag: the
        // collector *observed* that rotation and never got its epoch.
        let window = 3usize;
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), window);
        coll.submit_window_frame(&win.export_frame(4, 100)).unwrap();
        let mut deltas = Vec::new();
        for p in 0..6u64 {
            win.insert_batch(&(0..200u64).map(|i| p * 50 + i % 4).collect::<Vec<_>>());
            win.rotate();
            deltas.push(win.export_delta(4, 100).unwrap());
        }
        // Deliver rotations 2..=4 (buffer fills: cap = window = 3),
        // then 5 (dropped by the bound), then the missing rotation 1:
        // the drain applies 1..=4 and empties the buffer, but rotation
        // 5 was observed-and-lost, so the flag must survive.
        for d in &deltas[1..4] {
            assert_eq!(
                coll.submit_window_frame(d).unwrap(),
                WindowSubmit::ResyncRequested
            );
        }
        assert_eq!(
            coll.submit_window_frame(&deltas[4]).unwrap(),
            WindowSubmit::ResyncRequested
        );
        assert_eq!(
            coll.submit_window_frame(&deltas[0]).unwrap(),
            WindowSubmit::Applied
        );
        assert_eq!(coll.switch_window(4).unwrap().rotations(), 4);
        assert_eq!(
            coll.resync_needed(),
            vec![4],
            "dropped rotation 5 must keep the resync flag"
        );
        // The snapshot heals it, as always.
        coll.submit_window_frame(&win.export_frame(4, 100)).unwrap();
        assert!(coll.resync_needed().is_empty());
        assert_replica_matches(&coll, 4, &win);
    }

    #[test]
    fn delta_before_snapshot_requests_resync() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), 3);
        win.insert_batch(&vec![1u64; 100]);
        win.rotate();
        let delta = win.export_delta(5, 100).unwrap();
        assert_eq!(
            coll.submit_window_frame(&delta).unwrap_err(),
            WindowSubmitError::NoSnapshot { switch: 5 }
        );
        assert_eq!(coll.resync_needed(), vec![5]);
        coll.submit_window_frame(&win.export_frame(5, 100)).unwrap();
        assert!(coll.resync_needed().is_empty());
        assert_replica_matches(&coll, 5, &win);
    }

    #[test]
    fn mismatched_ring_rejected() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let win3 = SlidingTopK::<u64>::new(window_cfg(3), 3);
        coll.submit_window_frame(&win3.export_frame(1, 100))
            .unwrap();
        // Different window size from the same switch id: rejected.
        let win4 = SlidingTopK::<u64>::new(window_cfg(3), 4);
        assert_eq!(
            coll.submit_window_frame(&win4.export_frame(1, 100))
                .unwrap_err(),
            WindowSubmitError::Mismatch { switch: 1 }
        );
        // Different seed: rejected too.
        let other = SlidingTopK::<u64>::new(window_cfg(4), 3);
        assert_eq!(
            coll.submit_window_frame(&other.export_frame(1, 100))
                .unwrap_err(),
            WindowSubmitError::Mismatch { switch: 1 }
        );
        // Garbage bytes are a wire error.
        assert!(matches!(
            coll.submit_window_frame(b"junk").unwrap_err(),
            WindowSubmitError::Wire(_)
        ));
    }

    /// Like [`run_delta_stream`] but dirty-first: the priming rotation
    /// falls back to a plain delta, every later one ships a patch —
    /// the fallback chain the telemetry exporter runs.
    fn run_dirty_stream(coll: &mut Collector<u64>, switch: u64, periods: u64) -> SlidingTopK<u64> {
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), 3);
        coll.submit_window_frame(&win.export_frame(switch, 1000))
            .unwrap();
        for p in 0..periods {
            let batch: Vec<u64> = (0..1000u64)
                .map(|i| switch * 1000 + p * 10 + i % 7)
                .collect();
            win.insert_batch(&batch);
            win.rotate();
            let bytes = win
                .export_dirty(switch, 1000)
                .unwrap_or_else(|| win.export_delta(switch, 1000).expect("closed epoch"));
            coll.submit_window_frame(&bytes).unwrap();
        }
        win
    }

    #[test]
    fn dirty_stream_reassembles_bit_exact() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let win = run_dirty_stream(&mut coll, 3, 6);
        assert!(coll.resync_needed().is_empty());
        assert_replica_matches(&coll, 3, &win);
    }

    #[test]
    fn dirty_window_size_change_rejected() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        run_dirty_stream(&mut coll, 5, 2);
        // The same switch id reappears with a W = 2 ring and ships a
        // dirty frame: ring identity wins over rotation bookkeeping.
        let mut other = SlidingTopK::<u64>::new(window_cfg(3), 2);
        let bytes = loop {
            other.insert_batch(&vec![9u64; 300]);
            other.rotate();
            if let Some(b) = other.export_dirty(5, 1000) {
                break b;
            }
        };
        assert_eq!(
            coll.submit_window_frame(&bytes).unwrap_err(),
            WindowSubmitError::Mismatch { switch: 5 }
        );
    }

    #[test]
    fn dirty_sketch_width_change_rejected() {
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        run_dirty_stream(&mut coll, 6, 2);
        // Same window size but a regeometried sketch: the patch's own
        // width betrays it before any bucket math happens.
        let narrow = HkConfig::builder()
            .arrays(2)
            .width(128)
            .k(8)
            .seed(3)
            .build();
        let mut other = SlidingTopK::<u64>::new(narrow, 3);
        let bytes = loop {
            other.insert_batch(&vec![9u64; 300]);
            other.rotate();
            if let Some(b) = other.export_dirty(6, 1000) {
                break b;
            }
        };
        assert_eq!(
            coll.submit_window_frame(&bytes).unwrap_err(),
            WindowSubmitError::Mismatch { switch: 6 }
        );
    }

    #[test]
    fn window_top_k_merges_disjoint_switches() {
        // Two switches, disjoint traffic (Sum rule): flow 500 sends half
        // its packets through each switch; network-wide it must rank
        // first even though it ties locally.
        let mut coll = Collector::<u64>::new(4, AggregationRule::Sum);
        let mut wins: Vec<SlidingTopK<u64>> = (0..2)
            .map(|_| SlidingTopK::<u64>::new(window_cfg(11), 2))
            .collect();
        for (s, win) in wins.iter_mut().enumerate() {
            let mut batch = Vec::new();
            for _ in 0..300 {
                // The cross-switch elephant, then this switch's locals.
                for f in [
                    500u64,
                    1 + s as u64 * 10,
                    2 + s as u64 * 10,
                    3 + s as u64 * 10,
                ] {
                    batch.push(f);
                }
            }
            win.insert_batch(&batch);
            coll.submit_window_frame(&win.export_frame(s as u64, 2000))
                .unwrap();
        }
        let top = coll.window_top_k();
        assert_eq!(top[0].0, 500, "cross-switch elephant must rank first");
        assert!(top[0].1 <= 600, "no over-estimation: {}", top[0].1);
        assert!(top[0].1 >= 550, "sum evidence lost: {}", top[0].1);
        // The merged ring exists and answers window queries.
        let merged = coll.merged_window().unwrap().unwrap();
        assert_eq!(merged.query(&500), top[0].1);
    }

    #[test]
    fn window_top_k_max_rule_never_overestimates() {
        // Three switches all observing the same stream (overlapping
        // paths, Max rule): estimates stay below the single-stream
        // truth.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut coll = Collector::<u64>::new(6, AggregationRule::Max);
        let mut wins: Vec<SlidingTopK<u64>> = (0..3)
            .map(|_| SlidingTopK::<u64>::new(window_cfg(21), 2))
            .collect();
        let mut state = 77u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 6
            } else {
                100 + state % 800
            };
            for w in wins.iter_mut() {
                w.insert(&f);
            }
            *truth.entry(f).or_insert(0) += 1;
        }
        for (s, w) in wins.iter().enumerate() {
            coll.submit_window_frame(&w.export_frame(s as u64, 20_000))
                .unwrap();
        }
        for (f, est) in coll.window_top_k() {
            assert!(est <= truth[&f], "flow {f}: {est} > {}", truth[&f]);
        }
    }

    #[test]
    fn end_period_leaves_windows_alone() {
        let mut coll = Collector::<u64>::new(4, AggregationRule::Sum);
        let mut win = SlidingTopK::<u64>::new(window_cfg(3), 2);
        win.insert_batch(&vec![9u64; 200]);
        coll.submit_window_frame(&win.export_frame(0, 100)).unwrap();
        coll.submit_report(vec![(1u64, 50)]);
        let _ = coll.end_period();
        assert!(coll.top_k().is_empty(), "tumbling state cleared");
        assert_eq!(
            coll.window_top_k()[0],
            (9, 200),
            "windowed state survives end_period"
        );
    }

    #[test]
    fn max_rule_no_overestimation_end_to_end() {
        use std::collections::HashMap;
        // Every packet of a flow is seen by every switch on its path:
        // simulate 3 switches all observing the same stream.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut switches: Vec<ParallelTopK<u64>> =
            (0..3).map(|_| ParallelTopK::<u64>::new(cfg(42))).collect();
        let mut state = 9u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 6
            } else {
                100 + state % 1000
            };
            for sw in &mut switches {
                sw.insert(&f);
            }
            *truth.entry(f).or_insert(0) += 1;
        }
        let mut c = Collector::new(6, AggregationRule::Max);
        for sw in &switches {
            c.submit_report(sw.top_k());
        }
        for (f, est) in c.top_k() {
            assert!(est <= truth[&f], "flow {f}: {est} > {}", truth[&f]);
        }
    }
}
