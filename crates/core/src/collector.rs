//! Network-wide top-k collection.
//!
//! The paper's footnote 2 describes the deployment HeavyKeeper targets:
//! each switch runs a sketch over its own traffic and periodically ships
//! it to a central collector, which combines the per-switch views into a
//! network-wide top-k and the switches reset for the next period.
//!
//! [`Collector`] implements the collector side. Switches submit either
//! whole sketches (merged via [`crate::merge`]) or plain top-k reports
//! (flow, estimate) when shipping the full sketch is too expensive.
//! Because one packet traverses several switches, the collector must be
//! told how to reconcile counts for the same flow seen at different
//! vantage points — [`AggregationRule`]:
//!
//! * [`AggregationRule::Max`] — every switch on a flow's path counts all
//!   of its packets, so the network-wide size is the *maximum* of the
//!   per-switch counts (the right rule for a single administrative domain
//!   where paths overlap). `Max` also preserves no-over-estimation: each
//!   input is a lower bound on the flow's true size, hence so is the max.
//! * [`AggregationRule::Sum`] — vantage points observe *disjoint* traffic
//!   (e.g. per-rack ToR uplinks), so sizes add.
//!
//! # Examples
//!
//! ```
//! use heavykeeper::collector::{AggregationRule, Collector};
//! use heavykeeper::{HkConfig, ParallelTopK};
//! use hk_common::TopKAlgorithm;
//!
//! let cfg = HkConfig::builder().width(512).k(4).seed(7).build();
//! let mut sw1 = ParallelTopK::<u64>::new(cfg.clone());
//! let mut sw2 = ParallelTopK::<u64>::new(cfg);
//! for i in 0..1000 {
//!     sw1.insert(&1); // flow 1 crosses both switches
//!     sw2.insert(&1);
//!     if i % 2 == 0 {
//!         sw2.insert(&2); // flow 2: only at switch 2, half the size
//!     }
//! }
//! let mut coll = Collector::new(4, AggregationRule::Max);
//! coll.submit_report(sw1.top_k());
//! coll.submit_report(sw2.top_k());
//! let top = coll.top_k();
//! assert_eq!(top[0].0, 1);
//! assert!(top[0].1 <= 1000, "Max rule never over-estimates");
//! ```

use std::collections::HashMap;

use crate::merge::{MergeError, MergeMode};
use crate::parallel::ParallelTopK;
use crate::wire::WireError;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

/// Why a wire submission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The payload did not decode.
    Wire(WireError),
    /// The decoded sketch is not merge-compatible with earlier ones.
    Merge(MergeError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire decode failed: {e}"),
            Self::Merge(e) => write!(f, "merge failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How per-switch counts for the same flow combine network-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationRule {
    /// Overlapping vantage points: take the maximum count. Preserves the
    /// no-over-estimation property of the inputs.
    #[default]
    Max,
    /// Disjoint vantage points: counts add.
    Sum,
}

/// Central collector aggregating per-switch top-k evidence.
///
/// Works from plain `(flow, estimate)` reports; for whole-sketch
/// submission see [`Collector::submit_sketch`], which folds the sketch's
/// own top-k through the same path after merging the bucket arrays into
/// an accumulated network-wide sketch.
#[derive(Debug, Clone)]
pub struct Collector<K: FlowKey> {
    rule: AggregationRule,
    k: usize,
    counts: HashMap<K, u64>,
    /// Network-wide merged sketch, present once a sketch was submitted.
    merged: Option<ParallelTopK<K>>,
    reports: usize,
}

impl<K: FlowKey> Collector<K> {
    /// Creates a collector reporting the top `k` flows network-wide.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, rule: AggregationRule) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            rule,
            k,
            counts: HashMap::new(),
            merged: None,
            reports: 0,
        }
    }

    /// Number of submissions (reports + sketches) so far this period.
    pub fn reports(&self) -> usize {
        self.reports
    }

    /// Submits one switch's top-k report for this period.
    pub fn submit_report(&mut self, report: Vec<(K, u64)>) {
        self.reports += 1;
        for (key, est) in report {
            let slot = self.counts.entry(key).or_insert(0);
            *slot = match self.rule {
                AggregationRule::Max => (*slot).max(est),
                AggregationRule::Sum => slot.saturating_add(est),
            };
        }
    }

    /// Submits one switch's *whole sketch* for this period. The first
    /// sketch seeds the network-wide merged sketch; later ones must be
    /// merge-compatible with it (same seed/width/arrays/field widths).
    ///
    /// The bucket-level merge follows the collector's aggregation rule:
    /// [`AggregationRule::Sum`] adds matching counts (disjoint vantage
    /// points), [`AggregationRule::Max`] takes the maximum (overlapping
    /// paths — summing would double-count shared packets).
    pub fn submit_sketch(&mut self, sketch: &ParallelTopK<K>) -> Result<(), MergeError> {
        let mode = match self.rule {
            AggregationRule::Max => MergeMode::Max,
            AggregationRule::Sum => MergeMode::Sum,
        };
        match &mut self.merged {
            None => {
                self.merged = Some(sketch.clone());
            }
            Some(acc) => acc.merge_from_with(sketch, mode)?,
        }
        self.submit_report(sketch.top_k());
        Ok(())
    }

    /// Submits a sketch shipped over the wire
    /// ([`ParallelTopK::to_wire`]) — the full footnote-2 hop: switch
    /// serializes, network carries the bytes, collector decodes and
    /// merges.
    pub fn submit_wire(&mut self, payload: &[u8]) -> Result<(), SubmitError> {
        let sketch = ParallelTopK::<K>::from_wire(payload).map_err(SubmitError::Wire)?;
        self.submit_sketch(&sketch).map_err(SubmitError::Merge)
    }

    /// The network-wide top-k for the current period, largest first.
    ///
    /// Flow estimates combine the reported evidence under the
    /// aggregation rule with (when sketches were submitted) the merged
    /// sketch's own estimate.
    pub fn top_k(&self) -> Vec<(K, u64)> {
        let mut all: Vec<(K, u64)> = self
            .counts
            .iter()
            .map(|(key, &c)| {
                // The merged sketch (built with the rule's merge mode) is
                // one more lower bound on the flow's network-wide size;
                // take the strongest evidence.
                let est = match &self.merged {
                    Some(m) => c.max(m.query(key)),
                    None => c,
                };
                (*key, est)
            })
            .collect();
        all.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        all.truncate(self.k);
        all
    }

    /// Ends the period: returns this period's top-k and clears all state
    /// (switch sketches reset on their side, paper footnote 2).
    pub fn end_period(&mut self) -> Vec<(K, u64)> {
        let out = self.top_k();
        self.counts.clear();
        self.merged = None;
        self.reports = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HkConfig;

    fn cfg(seed: u64) -> HkConfig {
        HkConfig::builder()
            .arrays(2)
            .width(512)
            .k(8)
            .seed(seed)
            .build()
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = Collector::<u64>::new(0, AggregationRule::Max);
    }

    #[test]
    fn max_rule_takes_maximum() {
        let mut c = Collector::new(2, AggregationRule::Max);
        c.submit_report(vec![(1u64, 100), (2, 50)]);
        c.submit_report(vec![(1u64, 70), (2, 90)]);
        let top = c.top_k();
        assert_eq!(top, vec![(1, 100), (2, 90)]);
    }

    #[test]
    fn sum_rule_adds() {
        let mut c = Collector::new(2, AggregationRule::Sum);
        c.submit_report(vec![(1u64, 100)]);
        c.submit_report(vec![(1u64, 70)]);
        assert_eq!(c.top_k(), vec![(1, 170)]);
    }

    #[test]
    fn sum_rule_saturates() {
        let mut c = Collector::new(1, AggregationRule::Sum);
        c.submit_report(vec![(1u64, u64::MAX - 5)]);
        c.submit_report(vec![(1u64, 100)]);
        assert_eq!(c.top_k(), vec![(1, u64::MAX)]);
    }

    #[test]
    fn truncates_to_k() {
        let mut c = Collector::new(3, AggregationRule::Max);
        c.submit_report((0..10u64).map(|f| (f, 100 - f)).collect());
        let top = c.top_k();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (0, 100));
    }

    #[test]
    fn end_period_clears() {
        let mut c = Collector::new(3, AggregationRule::Max);
        c.submit_report(vec![(1u64, 10)]);
        assert_eq!(c.reports(), 1);
        let period1 = c.end_period();
        assert_eq!(period1.len(), 1);
        assert_eq!(c.reports(), 0);
        assert!(c.top_k().is_empty());
    }

    #[test]
    fn sketch_submission_improves_cross_switch_flow() {
        // Flow 100 is medium at each switch; its per-switch reports may
        // miss it, but the merged sketch still knows it.
        let mk = || ParallelTopK::<u64>::new(cfg(13));
        let (mut sw1, mut sw2) = (mk(), mk());
        for _ in 0..300 {
            for f in 0..8u64 {
                sw1.insert(&f);
                sw2.insert(&(10 + f));
            }
            sw1.insert(&100);
            sw2.insert(&100);
        }
        let mut c = Collector::new(4, AggregationRule::Max);
        c.submit_sketch(&sw1).unwrap();
        c.submit_sketch(&sw2).unwrap();
        // Even if flow 100 misses top-4, the merged sketch must estimate
        // it at up to 600 (300 per switch) and never more.
        let direct = c.merged.as_ref().unwrap().query(&100);
        assert!(direct <= 600, "no over-estimation: {direct}");
        assert!(direct >= 300, "merge should see both halves: {direct}");
    }

    #[test]
    fn wire_submission_end_to_end() {
        let mut sw = ParallelTopK::<u64>::new(cfg(21));
        for _ in 0..1000 {
            sw.insert(&5);
        }
        let payload = sw.to_wire();
        let mut c = Collector::<u64>::new(4, AggregationRule::Max);
        c.submit_wire(&payload).unwrap();
        let top = c.top_k();
        assert_eq!(top[0].0, 5);
        assert!(top[0].1 <= 1000);
        // Garbage payloads error cleanly.
        assert!(matches!(c.submit_wire(b"junk"), Err(SubmitError::Wire(_))));
        // Merge-incompatible payloads error cleanly.
        let other = ParallelTopK::<u64>::new(cfg(22));
        assert!(matches!(
            c.submit_wire(&other.to_wire()),
            Err(SubmitError::Merge(_))
        ));
    }

    #[test]
    fn incompatible_sketch_rejected() {
        let mut c = Collector::new(4, AggregationRule::Max);
        c.submit_sketch(&ParallelTopK::<u64>::new(cfg(1))).unwrap();
        let err = c.submit_sketch(&ParallelTopK::<u64>::new(cfg(2)));
        assert!(err.is_err());
    }

    #[test]
    fn max_rule_no_overestimation_end_to_end() {
        use std::collections::HashMap;
        // Every packet of a flow is seen by every switch on its path:
        // simulate 3 switches all observing the same stream.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut switches: Vec<ParallelTopK<u64>> =
            (0..3).map(|_| ParallelTopK::<u64>::new(cfg(42))).collect();
        let mut state = 9u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 6
            } else {
                100 + state % 1000
            };
            for sw in &mut switches {
                sw.insert(&f);
            }
            *truth.entry(f).or_insert(0) += 1;
        }
        let mut c = Collector::new(6, AggregationRule::Max);
        for sw in &switches {
            c.submit_report(sw.top_k());
        }
        for (f, est) in c.top_k() {
            assert!(est <= truth[&f], "flow {f}: {est} > {}", truth[&f]);
        }
    }
}
