//! Live resharding support types: lane-interval math, the migration
//! report, and its error surface.
//!
//! [`ShardedEngine::reshard`](crate::ShardedEngine::reshard) changes
//! the shard count under traffic as a phase-structured migration —
//! drain (checkpoint barrier through every ring), split/merge (rebuild
//! every new shard from restored donor checkpoints), swap (install the
//! new topology and lane routing). This module holds the pieces that
//! are pure data or pure arithmetic:
//!
//! * **Lane intervals.** Routing folds a prepared key's 32-bit lane to
//!   a shard by multiply-shift: `shard = (lane · n) >> 32`. Under that
//!   map every shard owns one *contiguous* interval of lane space, so
//!   the donors of a new shard — the old shards whose packets it must
//!   inherit — are exactly the old shards whose intervals intersect
//!   its own, a contiguous run computable without scanning lanes.
//! * **[`ReshardReport`]** — what one migration did: the per-donor
//!   checkpoint cuts, any forced recoveries (with their dark windows),
//!   and whether the migration committed or rolled back to the old
//!   topology.

use crate::sharded::RecoveryReport;

/// Full 32-bit lane space: lanes are `u32`, intervals are half-open in
/// `u64` so the top interval's exclusive end is representable.
const LANE_SPACE: u64 = 1 << 32;

/// Routes a prepared key's lane to a shard index (multiply-shift over
/// the shard count — no modulo bias, no division). The free-function
/// form of the engine's routing fold, shared with the reshard plane so
/// donor selection and store repartition use the exact map the
/// dispatcher does.
#[inline]
pub(crate) fn lane_to_shard(lane: u32, shards: usize) -> usize {
    ((lane as u64 * shards as u64) >> 32) as usize
}

/// The half-open interval `[start, end)` of lanes shard `shard` owns
/// under a `shards`-way multiply-shift split.
#[inline]
pub(crate) fn lane_span(shard: usize, shards: usize) -> (u64, u64) {
    let start = (shard as u64 * LANE_SPACE).div_ceil(shards as u64);
    let end = ((shard as u64 + 1) * LANE_SPACE).div_ceil(shards as u64);
    (start, end)
}

/// The old shards whose lane intervals intersect new shard `new_idx`'s
/// interval — the donors its restored state folds together. Intervals
/// partition lane space on both sides, so the donors are a contiguous
/// inclusive run of old indices.
pub(crate) fn donor_range(new_idx: usize, new_shards: usize, old_shards: usize) -> (usize, usize) {
    let (start, end) = lane_span(new_idx, new_shards);
    let first = lane_to_shard(start as u32, old_shards);
    let last = lane_to_shard((end - 1) as u32, old_shards);
    (first, last)
}

/// What one [`reshard`](crate::ShardedEngine::reshard) call did.
///
/// A migration either **commits** — the new topology is installed, all
/// packet counters rebased to the donor checkpoint cuts — or **rolls
/// back**: the old topology keeps serving (degraded exactly as before
/// the call if shards were already poisoned) and `rollback` names the
/// reason. Either way `recoveries` lists every respawn the migration
/// was forced to run when a fault fired inside a phase, and
/// `dark_packets` sums their dark windows — the migration's total loss
/// bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardReport {
    /// Shard count before the migration.
    pub from_shards: usize,
    /// Requested shard count (equals the installed count iff committed).
    pub to_shards: usize,
    /// True when the new topology was installed.
    pub committed: bool,
    /// Per-old-shard routed-packet positions of the drain cuts, once
    /// the drain phase completed (empty on a rollback during drain).
    pub cut_packets: Vec<u64>,
    /// Sum of the dark windows of every recovery forced mid-migration.
    pub dark_packets: u64,
    /// Every respawn the migration performed, in order.
    pub recoveries: Vec<RecoveryReport>,
    /// `None` when committed; otherwise why the migration rolled back
    /// to the old topology.
    pub rollback: Option<String>,
}

impl std::fmt::Display for ReshardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.committed {
            write!(
                f,
                "reshard {} -> {} committed ({} forced recoveries, {} dark packets)",
                self.from_shards,
                self.to_shards,
                self.recoveries.len(),
                self.dark_packets
            )
        } else {
            write!(
                f,
                "reshard {} -> {} rolled back: {} ({} forced recoveries, {} dark packets)",
                self.from_shards,
                self.to_shards,
                self.rollback.as_deref().unwrap_or("unknown"),
                self.recoveries.len(),
                self.dark_packets
            )
        }
    }
}

/// Why [`reshard`](crate::ShardedEngine::reshard) could not run at all
/// (misuse — distinct from a fault-driven rollback, which is reported
/// through [`ReshardReport::rollback`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReshardError {
    /// A zero shard count was requested.
    ZeroShards,
    /// [`enable_checkpoints`](crate::ShardedEngine::enable_checkpoints)
    /// was never called: without the captured encode/restore capability
    /// there is no way to cut, move, or rebuild shard state.
    CheckpointsDisabled,
}

impl std::fmt::Display for ReshardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroShards => write!(f, "cannot reshard to zero shards"),
            Self::CheckpointsDisabled => {
                write!(
                    f,
                    "resharding requires enable_checkpoints to be called first"
                )
            }
        }
    }
}

impl std::error::Error for ReshardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_partition_lane_space() {
        for shards in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            let mut expected_start = 0u64;
            for i in 0..shards {
                let (start, end) = lane_span(i, shards);
                assert_eq!(start, expected_start, "{shards} shards, shard {i}");
                assert!(end > start, "{shards} shards, shard {i} empty");
                expected_start = end;
            }
            assert_eq!(
                expected_start, LANE_SPACE,
                "{shards} shards cover lane space"
            );
        }
    }

    #[test]
    fn span_boundaries_agree_with_routing() {
        // Every span's first/last lane must route back to its shard,
        // and the lanes just outside must not.
        for shards in [2usize, 3, 4, 5, 7, 16] {
            for i in 0..shards {
                let (start, end) = lane_span(i, shards);
                assert_eq!(lane_to_shard(start as u32, shards), i);
                assert_eq!(lane_to_shard((end - 1) as u32, shards), i);
                if start > 0 {
                    assert_eq!(lane_to_shard((start - 1) as u32, shards), i - 1);
                }
            }
        }
    }

    #[test]
    fn grow_donors_are_single_parents() {
        // 2 -> 4: each child inherits exactly one parent.
        assert_eq!(donor_range(0, 4, 2), (0, 0));
        assert_eq!(donor_range(1, 4, 2), (0, 0));
        assert_eq!(donor_range(2, 4, 2), (1, 1));
        assert_eq!(donor_range(3, 4, 2), (1, 1));
    }

    #[test]
    fn shrink_donors_fold_pairs() {
        // 4 -> 2: each survivor folds exactly two donors.
        assert_eq!(donor_range(0, 2, 4), (0, 1));
        assert_eq!(donor_range(1, 2, 4), (2, 3));
    }

    #[test]
    fn ragged_reshard_donors_cover_every_old_shard() {
        // Non-divisible counts: every old shard must donate somewhere,
        // and donor runs must be monotone (no old shard skipped).
        for (old, new) in [(2usize, 3usize), (3, 2), (3, 5), (5, 3), (4, 7), (7, 4)] {
            let mut covered = vec![false; old];
            let mut prev_last = 0usize;
            for j in 0..new {
                let (first, last) = donor_range(j, new, old);
                assert!(first <= last, "{old}->{new} shard {j}");
                assert!(first <= prev_last.max(first), "donor runs monotone");
                for slot in covered.iter_mut().take(last + 1).skip(first) {
                    *slot = true;
                }
                prev_last = last;
            }
            assert!(
                covered.iter().all(|&c| c),
                "{old}->{new}: every old shard donates"
            );
        }
    }
}
