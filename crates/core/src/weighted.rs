//! Weighted (byte-counting) HeavyKeeper — an extension beyond the paper.
//!
//! Section III-F lists weighted updates among HeavyKeeper's limitations:
//! the published algorithm counts *packets* (every update is +1). Many
//! deployments rank flows by **bytes**, where each packet carries a
//! weight. This module generalizes the algorithm:
//!
//! * **Case 1** (empty bucket): claim it with `C = w`.
//! * **Case 2** (fingerprint match): `C += w`, saturating.
//! * **Case 3** (held by another flow): play `w` unit-decay trials
//!   against the counter, with the probability re-evaluated after every
//!   successful decay ([`HkSketch::weighted_decay_roll`], implemented
//!   with geometric skipping so the cost is proportional to the number
//!   of *decays*, not to `w`). If the counter reaches 0 with `r` trials
//!   to spare, the new flow claims the bucket with `C = max(r, 1)`.
//!
//! With all weights equal to 1 this reduces exactly to the paper's
//! unit-update semantics (the tests pin this down distributionally).
//!
//! ## What changes for top-k admission
//!
//! Theorem 1 (`n̂ = n_min + 1` after any admission-worthy insertion) is
//! an artifact of +1 updates, so Optimization I's equality gate is no
//! longer sound: a legitimate weighted insertion can jump the estimate
//! far past `n_min`. [`WeightedTopK`] therefore admits on `n̂ > n_min`.
//! The price is exactly what the paper's Section III-D analysis warns
//! about: a fingerprint-collision mouse is no longer filtered by the
//! equality test. The no-over-estimation property (Theorem 2) is
//! unaffected — counters still only grow by the true arriving weight.

use crate::config::HkConfig;
use crate::sketch::HkSketch;
use crate::store::TopKStore;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

/// HeavyKeeper with weighted updates (e.g. ranking flows by bytes).
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, WeightedTopK};
/// use hk_common::TopKAlgorithm;
///
/// let cfg = HkConfig::builder().width(256).counter_bits(32).k(4).seed(1).build();
/// let mut hk = WeightedTopK::<u64>::new(cfg);
/// for i in 0..1000u64 {
///     hk.insert_weighted(&1, 1400); // one bulk-transfer flow, big packets
///     hk.insert_weighted(&(100 + i), 40); // many tiny mice
/// }
/// let top = hk.top_k();
/// assert_eq!(top[0].0, 1);
/// assert!(top[0].1 <= 1_400_000, "no over-estimation of byte counts");
/// ```
#[derive(Debug, Clone)]
pub struct WeightedTopK<K: FlowKey> {
    sketch: HkSketch,
    store: TopKStore<K>,
    cfg: HkConfig,
}

impl<K: FlowKey> WeightedTopK<K> {
    /// Builds the algorithm from a configuration.
    ///
    /// Byte counts grow ~three orders of magnitude faster than packet
    /// counts; prefer `counter_bits(32)` over the paper's 16 when
    /// weights are packet sizes.
    pub fn new(cfg: HkConfig) -> Self {
        Self {
            sketch: HkSketch::new(&cfg),
            store: TopKStore::new(cfg.store, cfg.k),
            cfg,
        }
    }

    /// Constructor from a total memory budget in bytes (Section VI-A
    /// accounting), with 32-bit counters suited to byte weights.
    pub fn with_memory(bytes: usize, k: usize, seed: u64) -> Self {
        let store_bytes = k * (K::ENCODED_LEN + 4);
        let sketch_bytes = bytes.saturating_sub(store_bytes).max(12);
        let cfg = HkConfig::builder()
            .memory_bytes(sketch_bytes)
            .counter_bits(32)
            .k(k)
            .seed(seed)
            .build();
        Self::new(cfg)
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &HkSketch {
        &self.sketch
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &HkConfig {
        &self.cfg
    }

    /// Processes one packet of flow `key` carrying `weight` units
    /// (bytes, records, ...). `weight = 0` is a no-op.
    pub fn insert_weighted(&mut self, key: &K, weight: u64) {
        if weight == 0 {
            return;
        }
        let kb = key.key_bytes();
        let p = self.sketch.prepare(kb.as_slice());
        let max = self.sketch.counter_max();

        let flag = self.store.contains(key);
        let nmin = self.store.nmin();

        let mut heavy_v = 0u64;
        for j in 0..self.sketch.arrays() {
            let i = self.sketch.slot(j, &p);
            let mut bucket = self.sketch.bucket(j, i);
            if bucket.is_empty() {
                // Case 1 (weighted): claim with the full weight.
                bucket = crate::bucket::Bucket {
                    fp: p.fp,
                    count: weight.min(max),
                };
                heavy_v = heavy_v.max(bucket.count);
            } else if bucket.fp == p.fp {
                // Case 2 (weighted), behind the Optimization II gate.
                if flag || bucket.count <= nmin {
                    bucket.count = (bucket.count + weight).min(max);
                    heavy_v = heavy_v.max(bucket.count);
                }
            } else {
                // Case 3 (weighted): contest the incumbent.
                let (new_c, rem) = self.sketch.weighted_decay_roll(bucket.count, weight);
                if new_c == 0 {
                    bucket.fp = p.fp;
                    bucket.count = rem.max(1).min(max);
                    heavy_v = heavy_v.max(bucket.count);
                } else {
                    bucket.count = new_c;
                }
            }
            self.sketch.set_bucket(j, i, bucket);
        }

        // Admission: Theorem 1's equality gate does not survive weighted
        // updates, so admit on `n̂ > n_min` (see module docs).
        if flag {
            self.store.update_max(key, heavy_v);
        } else if !self.store.is_full() {
            if heavy_v > 0 {
                self.store.admit(*key, heavy_v);
            }
        } else if heavy_v > nmin {
            self.store.admit(*key, heavy_v);
        }
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for WeightedTopK<K> {
    /// Unit-weight insertion (the paper's packet-counting semantics).
    fn insert(&mut self, key: &K) {
        self.insert_weighted(key, 1);
    }

    fn query(&self, key: &K) -> u64 {
        let kb = key.key_bytes();
        self.sketch.query(kb.as_slice())
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        self.store.sorted_desc()
    }

    fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes() + self.store.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "HK-Weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_common::prng::XorShift64;
    use std::collections::HashMap;

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder()
            .arrays(2)
            .width(w)
            .counter_bits(32)
            .k(k)
            .seed(5)
            .build()
    }

    #[test]
    fn uncontended_flow_counts_weights_exactly() {
        let mut hk = WeightedTopK::<u64>::new(cfg(64, 4));
        let mut total = 0u64;
        for i in 1..=100u64 {
            hk.insert_weighted(&7, i);
            total += i;
        }
        assert_eq!(hk.query(&7), total);
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut hk = WeightedTopK::<u64>::new(cfg(64, 4));
        hk.insert_weighted(&7, 0);
        assert_eq!(hk.query(&7), 0);
        assert!(hk.top_k().is_empty());
    }

    #[test]
    fn byte_elephants_beat_packet_elephants() {
        // Flow 1: few packets, huge. Flows 2..6: many packets, tiny.
        // By bytes, flow 1 dominates; packet-counting would rank it last.
        let mut hk = WeightedTopK::<u64>::new(cfg(256, 3));
        for round in 0..200u64 {
            hk.insert_weighted(&1, 9000); // jumbo frames
            for f in 2..7u64 {
                for _ in 0..4 {
                    hk.insert_weighted(&f, 40); // ACK stream
                }
            }
            let _ = round;
        }
        let top = hk.top_k();
        assert_eq!(top[0].0, 1, "top by bytes = {top:?}");
        assert!(top[0].1 <= 200 * 9000);
    }

    #[test]
    fn no_overestimation_of_weighted_totals() {
        let mut hk = WeightedTopK::<u64>::new(cfg(128, 8));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = XorShift64::new(3);
        for _ in 0..30_000 {
            let r = rng.next_u64_raw();
            let f = if r.is_multiple_of(4) {
                r % 8
            } else {
                100 + r % 2000
            };
            let w = 40 + (r >> 32) % 1460; // realistic packet sizes
            hk.insert_weighted(&f, w);
            *truth.entry(f).or_insert(0) += w;
        }
        for (f, est) in hk.top_k() {
            assert!(est <= truth[&f], "flow {f}: {est} > {}", truth[&f]);
        }
    }

    #[test]
    fn unit_weights_match_unweighted_distributionally() {
        // With w = 1 everywhere, the weighted variant must find the same
        // elephants as ParallelTopK on the same stream (not bit-identical
        // — RNG consumption differs — but the same top set).
        use crate::parallel::ParallelTopK;
        let mut wtd = WeightedTopK::<u64>::new(cfg(256, 5));
        let mut par = ParallelTopK::<u64>::new(cfg(256, 5));
        let mut rng = XorShift64::new(11);
        for _ in 0..50_000 {
            let r = rng.next_u64_raw();
            let f = if !r.is_multiple_of(3) {
                r % 5
            } else {
                100 + r % 5000
            };
            wtd.insert_weighted(&f, 1);
            par.insert(&f);
        }
        let mut a: Vec<u64> = wtd.top_k().into_iter().map(|(k, _)| k).collect();
        let mut b: Vec<u64> = par.top_k().into_iter().map(|(k, _)| k).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same elephants under unit weights");
    }

    #[test]
    fn heavy_weight_displaces_mouse() {
        // A mouse holds a bucket with a small counter; one giant weighted
        // packet must evict it and claim the leftover weight.
        let tiny = HkConfig::builder()
            .arrays(1)
            .width(1)
            .counter_bits(32)
            .k(2)
            .seed(9)
            .build();
        let mut hk = WeightedTopK::<u64>::new(tiny);
        hk.insert_weighted(&1, 3); // mouse holds bucket with C = 3
        hk.insert_weighted(&2, 1000);
        let est = hk.query(&2);
        assert!(est > 0, "giant packet must claim the bucket");
        assert!(est <= 1000, "claimed count bounded by arriving weight");
        assert_eq!(hk.query(&1), 0, "mouse evicted");
    }

    #[test]
    fn elephant_resists_weighted_mice() {
        // An elephant with a large counter faces many small weighted
        // opponents; geometric skipping must leave it essentially intact.
        let tiny = HkConfig::builder()
            .arrays(1)
            .width(1)
            .counter_bits(32)
            .k(2)
            .seed(9)
            .build();
        let mut hk = WeightedTopK::<u64>::new(tiny);
        hk.insert_weighted(&1, 500_000);
        for m in 0..1000u64 {
            hk.insert_weighted(&(10 + m), 100);
        }
        let est = hk.query(&1);
        assert!(est > 400_000, "elephant decayed too far: {est}");
    }

    #[test]
    fn counter_saturates_at_bit_width() {
        let c = HkConfig::builder()
            .arrays(1)
            .width(4)
            .counter_bits(16)
            .k(2)
            .seed(2)
            .build();
        let mut hk = WeightedTopK::<u64>::new(c);
        hk.insert_weighted(&3, 1 << 20);
        assert_eq!(hk.query(&3), (1 << 16) - 1);
    }

    #[test]
    fn weighted_decay_roll_statistics() {
        // Against C = 1 (p ≈ 0.926 at b = 1.08), one trial should succeed
        // ~92.6% of the time.
        let mut sk = HkSketch::new(&cfg(4, 2));
        let trials = 20_000;
        let mut zeroed = 0;
        for _ in 0..trials {
            let (c, _) = sk.weighted_decay_roll(1, 1);
            if c == 0 {
                zeroed += 1;
            }
        }
        let frac = zeroed as f64 / trials as f64;
        let expect = 1.08f64.powi(-1);
        assert!(
            (frac - expect).abs() < 0.02,
            "observed {frac}, expected {expect}"
        );
    }

    #[test]
    fn weighted_decay_roll_large_counter_immovable() {
        let mut sk = HkSketch::new(&cfg(4, 2));
        // Past the decay-table cutoff the counter must not move at all,
        // regardless of the opposing weight.
        let c0 = 1000;
        let (c, rem) = sk.weighted_decay_roll(c0, u64::MAX);
        assert_eq!(c, c0);
        assert_eq!(rem, 0);
    }

    #[test]
    fn weighted_decay_roll_huge_weight_zeroes_small_counter() {
        let mut sk = HkSketch::new(&cfg(4, 2));
        let (c, rem) = sk.weighted_decay_roll(5, 1 << 30);
        assert_eq!(c, 0, "5 cheap decays against 2^30 trials");
        assert!(rem > 0, "weight must remain after zeroing");
        assert!(rem < 1 << 30);
    }

    #[test]
    fn weighted_decay_roll_invariants() {
        let mut sk = HkSketch::new(&cfg(4, 2));
        let mut rng = XorShift64::new(77);
        for _ in 0..2000 {
            let c0 = 1 + rng.next_u64_raw() % 300;
            let w0 = rng.next_u64_raw() % 10_000;
            let (c, rem) = sk.weighted_decay_roll(c0, w0);
            assert!(c <= c0, "counter may only fall");
            assert!(rem <= w0, "weight may only be consumed");
            assert!(rem == 0 || c == 0, "leftover weight only after zeroing");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut hk = WeightedTopK::<u64>::new(cfg(64, 4));
            let mut rng = XorShift64::new(4);
            for _ in 0..10_000 {
                let r = rng.next_u64_raw();
                hk.insert_weighted(&(r % 50), 1 + r % 1500);
            }
            hk.top_k()
        };
        assert_eq!(run(), run());
    }
}
