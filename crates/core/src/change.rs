//! Heavy-change detection across measurement epochs — an extension
//! beyond the paper.
//!
//! The paper motivates top-k measurement with anomaly detection
//! (Section I-A); the concrete primitive anomaly detectors want is the
//! *heavy change*: a flow whose size changed by more than a threshold
//! between two adjacent epochs (a new DDoS source ramping up, a service
//! going dark). HeavyGuardian (the decay strategy's origin) lists heavy
//! change among its five tasks; HeavyKeeper does not address it. The
//! epoch deployment model (footnote 2: report and reset per period)
//! makes it cheap to add on top of HeavyKeeper:
//!
//! Keep the previous epoch's top-k report (k flows + sizes, a few KB)
//! next to the current epoch's sketch. At the epoch boundary, a flow is
//! a heavy change if `|n̂_now − n̂_prev| ≥ threshold`, where a flow
//! missing from one epoch's view counts as 0 there.
//!
//! Detection is necessarily restricted to flows that were heavy enough
//! to be *reported* in at least one epoch — the same candidate-set
//! limit every sketch-based change detector has. A mouse-to-mouse
//! change (e.g. 3 → 80 packets, both below the top-k floor) is
//! invisible; a mouse-to-elephant or elephant-to-mouse change is
//! exactly what the top-k reports surface. Since per-epoch estimates
//! never over-estimate (Theorem 2), a *detected increase* of `Δ` means
//! the true increase is at least `Δ − (prev's over-read of 0) −
//! under-estimation slack` — in practice the under-estimation of
//! elephants is tiny (Theorem 3), so thresholds transfer.

use crate::parallel::ParallelTopK;
use hk_common::algorithm::{EpochRotate, PreparedInsert, TopKAlgorithm};
use hk_common::key::FlowKey;
use hk_common::prepared::{HashSpec, PreparedKey};
use std::collections::HashMap;

/// Which direction a flow's size moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The flow grew (e.g. attack ramp-up, new bulk transfer).
    Increase,
    /// The flow shrank (e.g. service outage, transfer completed).
    Decrease,
}

/// One detected heavy change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyChange<K> {
    /// The flow that changed.
    pub flow: K,
    /// Estimated size in the previous epoch (0 if unreported).
    pub before: u64,
    /// Estimated size in the current epoch (0 if unreported).
    pub after: u64,
    /// Direction of the change.
    pub kind: ChangeKind,
}

impl<K> HeavyChange<K> {
    /// The absolute estimated change.
    pub fn magnitude(&self) -> u64 {
        self.before.abs_diff(self.after)
    }
}

/// Epoch-to-epoch heavy-change detector over a HeavyKeeper.
///
/// # Examples
///
/// ```
/// use heavykeeper::change::{ChangeKind, HeavyChangeDetector};
/// use heavykeeper::HkConfig;
///
/// let cfg = HkConfig::builder().width(512).k(8).seed(1).build();
/// let mut det = HeavyChangeDetector::<u64>::new(cfg, 500);
/// // Epoch 1: flow 1 is the elephant.
/// for _ in 0..1000 {
///     det.insert(&1);
/// }
/// assert!(det.end_epoch().is_empty(), "first epoch has no baseline");
/// // Epoch 2: flow 1 vanishes, flow 2 erupts.
/// for _ in 0..1000 {
///     det.insert(&2);
/// }
/// let changes = det.end_epoch();
/// assert!(changes.iter().any(|c| c.flow == 2 && c.kind == ChangeKind::Increase));
/// assert!(changes.iter().any(|c| c.flow == 1 && c.kind == ChangeKind::Decrease));
/// ```
#[derive(Debug, Clone)]
pub struct HeavyChangeDetector<K: FlowKey> {
    current: ParallelTopK<K>,
    previous: HashMap<K, u64>,
    threshold: u64,
    epochs: u64,
    /// Changes from the last [`EpochRotate::rotate_epoch`]-driven
    /// boundary, retrievable via
    /// [`HeavyChangeDetector::take_last_changes`] (the trait surface
    /// cannot return them inline).
    last_changes: Vec<HeavyChange<K>>,
}

impl<K: FlowKey> HeavyChangeDetector<K> {
    /// Creates a detector flagging changes of at least `threshold`
    /// packets between adjacent epochs.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (every reported flow would be a
    /// change).
    pub fn new(cfg: crate::config::HkConfig, threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Self {
            current: ParallelTopK::new(cfg),
            previous: HashMap::new(),
            threshold,
            epochs: 0,
            last_changes: Vec::new(),
        }
    }

    /// The change threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Processes one packet of the current epoch.
    pub fn insert(&mut self, key: &K) {
        self.current.insert(key);
    }

    /// Processes a batch of the current epoch through the batch-first
    /// pipeline (prepared-batch prolog + pre-touched block walk of the
    /// underlying [`ParallelTopK`]).
    pub fn insert_batch(&mut self, keys: &[K]) {
        self.current.insert_batch(keys);
    }

    /// Read access to the current epoch's top-k (diagnostics).
    pub fn current_top_k(&self) -> Vec<(K, u64)> {
        self.current.top_k()
    }

    /// The heavy changes produced by the most recent boundary crossed
    /// through [`EpochRotate::rotate_epoch`] (empty after a direct
    /// [`HeavyChangeDetector::end_epoch`], which returns them instead).
    pub fn take_last_changes(&mut self) -> Vec<HeavyChange<K>> {
        std::mem::take(&mut self.last_changes)
    }

    /// Closes the epoch: returns the heavy changes versus the previous
    /// epoch (largest magnitude first), stores this epoch's report as
    /// the new baseline, and resets the sketch for the next epoch.
    ///
    /// The first `end_epoch` returns no changes (no baseline yet).
    pub fn end_epoch(&mut self) -> Vec<HeavyChange<K>> {
        let now: HashMap<K, u64> = self.current.top_k().into_iter().collect();
        let mut changes = Vec::new();
        if self.epochs > 0 {
            // Flows visible now: compare against the previous estimate
            // (0 when previously unreported).
            for (flow, &after) in &now {
                let before = self.previous.get(flow).copied().unwrap_or(0);
                push_if_heavy(&mut changes, *flow, before, after, self.threshold);
            }
            // Flows that fell out of the report entirely.
            for (flow, &before) in &self.previous {
                if !now.contains_key(flow) {
                    push_if_heavy(&mut changes, *flow, before, 0, self.threshold);
                }
            }
            changes.sort_by_key(|c| std::cmp::Reverse(c.magnitude()));
        }
        self.previous = now;
        self.current.reset();
        self.epochs += 1;
        changes
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for HeavyChangeDetector<K> {
    fn insert(&mut self, key: &K) {
        HeavyChangeDetector::insert(self, key);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        HeavyChangeDetector::insert_batch(self, keys);
    }

    fn query(&self, key: &K) -> u64 {
        self.current.query(key)
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        self.current.top_k()
    }

    fn memory_bytes(&self) -> usize {
        // The sketch plus the k-entry baseline report kept between
        // epochs.
        self.current.memory_bytes() + self.previous.len() * (K::ENCODED_LEN + 8)
    }

    fn name(&self) -> &'static str {
        "HK-Change"
    }
}

impl<K: FlowKey> PreparedInsert<K> for HeavyChangeDetector<K> {
    fn hash_spec(&self) -> HashSpec {
        self.current.hash_spec()
    }

    fn insert_prepared(&mut self, key: &K, p: &PreparedKey) {
        self.current.insert_prepared(key, p);
    }

    fn insert_prepared_batch(&mut self, keys: &[K], prepared: &[PreparedKey]) {
        // Hash-once handoff into the current epoch's sketch — sharded
        // change detection rides the same dispatch plane as everything
        // else.
        self.current.insert_prepared_batch(keys, prepared);
    }

    fn consumes_prepared(&self) -> bool {
        true
    }
}

impl<K: FlowKey> EpochRotate for HeavyChangeDetector<K> {
    /// Closes the epoch like [`HeavyChangeDetector::end_epoch`], but
    /// through the caller-owns-the-clock trait surface (CLI period
    /// loops, the sharded engine's phase-aligned
    /// `rotate_all`). The boundary's changes are stashed for
    /// [`HeavyChangeDetector::take_last_changes`].
    fn rotate_epoch(&mut self) {
        self.last_changes = self.end_epoch();
    }
}

fn push_if_heavy<K>(
    out: &mut Vec<HeavyChange<K>>,
    flow: K,
    before: u64,
    after: u64,
    threshold: u64,
) {
    if before.abs_diff(after) >= threshold {
        out.push(HeavyChange {
            flow,
            before,
            after,
            kind: if after >= before {
                ChangeKind::Increase
            } else {
                ChangeKind::Decrease
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HkConfig;

    fn cfg() -> HkConfig {
        HkConfig::builder().width(512).k(8).seed(3).build()
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        let _ = HeavyChangeDetector::<u64>::new(cfg(), 0);
    }

    #[test]
    fn first_epoch_has_no_changes() {
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 10);
        for _ in 0..1000 {
            det.insert(&1);
        }
        assert!(det.end_epoch().is_empty());
        assert_eq!(det.epochs(), 1);
    }

    #[test]
    fn stable_traffic_reports_nothing() {
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 100);
        for _ in 0..3 {
            for _ in 0..1000 {
                det.insert(&1);
                det.insert(&2);
            }
            let changes = det.end_epoch();
            if det.epochs() > 1 {
                assert!(changes.is_empty(), "stable flows flagged: {changes:?}");
            }
        }
    }

    #[test]
    fn eruption_and_disappearance_detected() {
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 500);
        for _ in 0..1000 {
            det.insert(&1);
        }
        det.end_epoch();
        for _ in 0..1000 {
            det.insert(&2);
        }
        let changes = det.end_epoch();
        let up = changes
            .iter()
            .find(|c| c.flow == 2)
            .expect("eruption missed");
        assert_eq!(up.kind, ChangeKind::Increase);
        assert_eq!(up.before, 0);
        assert!(up.after <= 1000, "no over-estimation");
        let down = changes
            .iter()
            .find(|c| c.flow == 1)
            .expect("disappearance missed");
        assert_eq!(down.kind, ChangeKind::Decrease);
        assert_eq!(down.after, 0);
    }

    #[test]
    fn sub_threshold_drift_ignored() {
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 500);
        for _ in 0..1000 {
            det.insert(&1);
        }
        det.end_epoch();
        // 1000 -> 800: drift of 200 < 500.
        for _ in 0..800 {
            det.insert(&1);
        }
        assert!(det.end_epoch().is_empty());
    }

    #[test]
    fn changes_sorted_by_magnitude() {
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 100);
        for _ in 0..500 {
            det.insert(&1);
        }
        for _ in 0..2000 {
            det.insert(&2);
        }
        det.end_epoch();
        // Both vanish; flow 2's change is larger.
        for _ in 0..1500 {
            det.insert(&3);
        }
        let changes = det.end_epoch();
        assert!(changes.len() >= 3);
        assert!(changes
            .windows(2)
            .all(|w| w[0].magnitude() >= w[1].magnitude()));
        assert_eq!(changes[0].flow, 2);
    }

    #[test]
    fn magnitude_is_absolute_difference() {
        let c = HeavyChange {
            flow: 1u64,
            before: 300,
            after: 120,
            kind: ChangeKind::Decrease,
        };
        assert_eq!(c.magnitude(), 180);
    }

    #[test]
    fn batched_ingest_matches_scalar() {
        // insert_batch and the PreparedInsert handoff must report the
        // same changes as per-packet insert, epoch by epoch.
        let stream: Vec<u64> = (0..30_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    i % 8
                } else {
                    100 + (i * 7) % 2000
                }
            })
            .collect();
        let mut scalar = HeavyChangeDetector::<u64>::new(cfg(), 300);
        let mut batched = HeavyChangeDetector::<u64>::new(cfg(), 300);
        let mut prepared = HeavyChangeDetector::<u64>::new(cfg(), 300);
        let spec = prepared.hash_spec();
        let mut pre: Vec<hk_common::prepared::PreparedKey> = Vec::new();
        for epoch in stream.chunks(10_000) {
            for p in epoch {
                scalar.insert(p);
            }
            for chunk in epoch.chunks(1024) {
                batched.insert_batch(chunk);
                spec.prepare_batch(chunk, &mut pre);
                prepared.insert_prepared_batch(chunk, &pre);
            }
            let want = scalar.end_epoch();
            assert_eq!(want, batched.end_epoch());
            assert_eq!(want, prepared.end_epoch());
        }
    }

    #[test]
    fn rotate_epoch_stashes_boundary_changes() {
        use hk_common::algorithm::{EpochRotate, TopKAlgorithm};
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 500);
        det.insert_batch(&vec![1u64; 1000]);
        det.rotate_epoch();
        assert!(det.take_last_changes().is_empty(), "no baseline yet");
        det.insert_batch(&vec![2u64; 1000]);
        det.rotate_epoch();
        let changes = det.take_last_changes();
        assert!(changes.iter().any(|c| c.flow == 2));
        assert!(changes.iter().any(|c| c.flow == 1));
        // take drains; the trait surface exposes the detector like any
        // other algorithm.
        assert!(det.take_last_changes().is_empty());
        assert_eq!(det.name(), "HK-Change");
        assert_eq!(det.epochs(), 2);
    }

    #[test]
    fn background_noise_does_not_hide_change() {
        // An eruption among 2000 background mice per epoch.
        let mut det = HeavyChangeDetector::<u64>::new(cfg(), 400);
        let mut mouse = 10_000u64;
        for epoch in 0..2 {
            for i in 0..2000u64 {
                det.insert(&mouse);
                mouse += 1;
                if epoch == 1 && i % 4 == 0 {
                    det.insert(&7); // erupting flow, 500 pkts
                }
            }
            let changes = det.end_epoch();
            if epoch == 1 {
                assert!(
                    changes
                        .iter()
                        .any(|c| c.flow == 7 && c.kind == ChangeKind::Increase),
                    "eruption lost in noise: {changes:?}"
                );
            }
        }
    }
}
