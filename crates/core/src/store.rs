//! Top-k bookkeeping store.
//!
//! The paper describes its top-k structure as a min-heap "for better
//! understanding" but implements it with Stream-Summary because both
//! expose the same operations and Stream-Summary updates in O(1)
//! (Section III-C, Note). [`TopKStore`] wraps either structure behind the
//! exact operations the HeavyKeeper variants need, and the test suite
//! checks the two are observationally equivalent.

use hk_common::key::FlowKey;
use hk_common::stream_summary::StreamSummary;
use hk_common::topk::MinHeapTopK;

use crate::config::StoreKind;

/// A bounded store of the current top-k flow IDs and estimated sizes.
#[derive(Debug, Clone)]
pub enum TopKStore<K: FlowKey> {
    /// Min-heap backed store (exposition variant).
    MinHeap(MinHeapTopK<K>),
    /// Stream-Summary backed store (the paper's implementation).
    StreamSummary(StreamSummary<K>),
}

impl<K: FlowKey> TopKStore<K> {
    /// Creates a store of the chosen kind holding at most `k` flows.
    pub fn new(kind: StoreKind, k: usize) -> Self {
        match kind {
            StoreKind::MinHeap => Self::MinHeap(MinHeapTopK::new(k)),
            StoreKind::StreamSummary => Self::StreamSummary(StreamSummary::new(k)),
        }
    }

    /// True if `key` is currently monitored (the paper's `flag`).
    pub fn contains(&self, key: &K) -> bool {
        match self {
            Self::MinHeap(h) => h.contains(key),
            Self::StreamSummary(s) => s.contains(key),
        }
    }

    /// Number of monitored flows.
    pub fn len(&self) -> usize {
        match self {
            Self::MinHeap(h) => h.len(),
            Self::StreamSummary(s) => s.len(),
        }
    }

    /// True when no flows are monitored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `k` flows are monitored.
    pub fn is_full(&self) -> bool {
        match self {
            Self::MinHeap(h) => h.is_full(),
            Self::StreamSummary(s) => s.is_full(),
        }
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        match self {
            Self::MinHeap(h) => h.capacity(),
            Self::StreamSummary(s) => s.capacity(),
        }
    }

    /// The paper's `n_min`: the smallest monitored size once full, else 0.
    pub fn nmin(&self) -> u64 {
        if !self.is_full() {
            return 0;
        }
        match self {
            Self::MinHeap(h) => h.min_count().unwrap_or(0),
            Self::StreamSummary(s) => s.min_count().unwrap_or(0),
        }
    }

    /// The monitored size of `key`, if present.
    pub fn count(&self, key: &K) -> Option<u64> {
        match self {
            Self::MinHeap(h) => h.count(key),
            Self::StreamSummary(s) => s.count(key),
        }
    }

    /// Updates a monitored flow to `max(current, estimate)` — the
    /// paper's `min_heap[fi] ← max(HeavyK_V, min_heap[fi])`.
    ///
    /// Returns `false` if the key is not monitored.
    pub fn update_max(&mut self, key: &K, estimate: u64) -> bool {
        match self {
            Self::MinHeap(h) => match h.count(key) {
                Some(cur) => {
                    if estimate > cur {
                        h.update(key, estimate);
                    }
                    true
                }
                None => false,
            },
            Self::StreamSummary(s) => match s.count(key) {
                Some(cur) => {
                    if estimate > cur {
                        s.set_count(key, estimate);
                    }
                    true
                }
                None => false,
            },
        }
    }

    /// Admits a new flow with the given estimate, evicting one minimum
    /// flow if at capacity. Returns the evicted flow, if any.
    ///
    /// The *decision* to admit (Optimization I's `n̂ = n_min + 1` rule)
    /// belongs to the caller; this method only performs the insertion.
    pub fn admit(&mut self, key: K, estimate: u64) -> Option<(K, u64)> {
        match self {
            Self::MinHeap(h) => h.offer(key, estimate),
            Self::StreamSummary(s) => {
                if s.contains(&key) {
                    let cur = s.count(&key).unwrap_or(0);
                    if estimate > cur {
                        s.set_count(&key, estimate);
                    }
                    return None;
                }
                let evicted = if s.is_full() { s.evict_min() } else { None };
                s.insert(key, estimate);
                evicted
            }
        }
    }

    /// All monitored flows, largest first.
    pub fn sorted_desc(&self) -> Vec<(K, u64)> {
        match self {
            Self::MinHeap(h) => h.sorted_desc(),
            Self::StreamSummary(s) => s.iter_desc().map(|(k, c)| (*k, c)).collect(),
        }
    }

    /// Accounted memory: `k` entries of (flow ID + 32-bit size), matching
    /// the paper's Stream-Summary with `m = k` entries.
    pub fn memory_bytes(&self) -> usize {
        self.capacity() * (K::ENCODED_LEN + 4)
    }

    /// Keeps only the monitored flows for which `keep` returns true —
    /// the store half of a reshard's lane repartition. Counts of the
    /// survivors are preserved exactly; the store is rebuilt smallest
    /// first so no admission can evict a survivor (the kept set never
    /// exceeds capacity).
    pub fn retain(&mut self, keep: &mut dyn FnMut(&K) -> bool) {
        let kind = match self {
            Self::MinHeap(_) => StoreKind::MinHeap,
            Self::StreamSummary(_) => StoreKind::StreamSummary,
        };
        let mut kept = self.sorted_desc();
        kept.retain(|(k, _)| keep(k));
        let mut fresh = Self::new(kind, self.capacity());
        for (k, c) in kept.into_iter().rev() {
            fresh.admit(k, c);
        }
        *self = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(k: usize) -> [TopKStore<u64>; 2] {
        [
            TopKStore::new(StoreKind::MinHeap, k),
            TopKStore::new(StoreKind::StreamSummary, k),
        ]
    }

    #[test]
    fn nmin_zero_until_full() {
        for mut s in both(3) {
            assert_eq!(s.nmin(), 0);
            s.admit(1, 10);
            s.admit(2, 20);
            assert_eq!(s.nmin(), 0, "not full yet");
            s.admit(3, 30);
            assert_eq!(s.nmin(), 10);
        }
    }

    #[test]
    fn admit_evicts_min_when_full() {
        for mut s in both(2) {
            s.admit(1, 10);
            s.admit(2, 20);
            let evicted = s.admit(3, 15);
            assert_eq!(evicted, Some((1, 10)));
            assert!(s.contains(&3) && s.contains(&2) && !s.contains(&1));
        }
    }

    #[test]
    fn update_max_only_raises() {
        for mut s in both(2) {
            s.admit(1, 10);
            assert!(s.update_max(&1, 5));
            assert_eq!(s.count(&1), Some(10));
            assert!(s.update_max(&1, 50));
            assert_eq!(s.count(&1), Some(50));
            assert!(!s.update_max(&99, 1));
        }
    }

    #[test]
    fn sorted_desc_order() {
        for mut s in both(4) {
            for (k, c) in [(1u64, 5), (2, 50), (3, 20), (4, 1)] {
                s.admit(k, c);
            }
            let v = s.sorted_desc();
            let counts: Vec<u64> = v.iter().map(|&(_, c)| c).collect();
            assert_eq!(counts, vec![50, 20, 5, 1]);
        }
    }

    #[test]
    fn heap_and_summary_equivalent_on_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut heap = TopKStore::<u64>::new(StoreKind::MinHeap, 8);
        let mut ss = TopKStore::<u64>::new(StoreKind::StreamSummary, 8);
        for step in 0..20_000u64 {
            let key = rng.gen_range(0..40u64);
            // Strictly increasing estimates keep counts unique, so the two
            // stores evict identical victims (under ties the choice of
            // victim is unspecified and the stores may legitimately
            // diverge in *which* key they keep).
            let est = step + 1;
            // Drive both stores through the same admission logic the
            // HeavyKeeper variants use.
            for s in [&mut heap, &mut ss] {
                if s.contains(&key) {
                    s.update_max(&key, est);
                } else if !s.is_full() || est > s.nmin() {
                    s.admit(key, est);
                }
            }
            // The multiset of monitored counts must agree (the exact
            // eviction victim may differ under ties, so compare counts).
            let mut a: Vec<u64> = heap.sorted_desc().iter().map(|&(_, c)| c).collect();
            let mut b: Vec<u64> = ss.sorted_desc().iter().map(|&(_, c)| c).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "divergence at step {step}");
            assert_eq!(heap.nmin(), ss.nmin());
        }
    }

    #[test]
    fn memory_accounting() {
        let s = TopKStore::<u64>::new(StoreKind::StreamSummary, 100);
        // 100 entries x (8-byte id + 4-byte count) = 1200.
        assert_eq!(s.memory_bytes(), 1200);
    }
}
