//! The Hardware Parallel version (Section III-E, Algorithm 1).
//!
//! Adds two optimizations to the basic version:
//!
//! * **Optimization I — fingerprint-collision detection.** Theorem 1:
//!   with no fingerprint collision, a freshly inserted flow whose
//!   estimate exceeds `n_min` must satisfy `n̂ = n_min + 1` exactly. A
//!   flow outside the top-k store reporting `n̂ > n_min + 1` therefore
//!   rode someone else's bucket via a fingerprint collision, and is *not*
//!   admitted.
//! * **Optimization II — selective increment.** A flow outside the store
//!   may not grow a matching bucket whose counter is already at or above
//!   `n_min`: if it were really that large it would be in the store, so
//!   the match is a collision and incrementing only adds error.
//!
//! Each array's bucket update depends only on that array, so the `d`
//! operations can run in parallel in hardware — hence the name. (This
//! implementation runs them sequentially; the *property* matters for
//! FPGA/ASIC ports, not for the accuracy evaluation.)

use crate::config::HkConfig;
use crate::sketch::{HkSketch, PreparedKey};
use crate::stats::InsertStats;
use crate::store::TopKStore;
use hk_common::algorithm::{PreparedInsert, TopKAlgorithm};
use hk_common::key::FlowKey;
use hk_common::prepared::{HashSpec, KeySlots, PreparedBatch};

/// Hardware Parallel HeavyKeeper (Algorithm 1).
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, ParallelTopK};
/// use hk_common::TopKAlgorithm;
/// let cfg = HkConfig::builder().width(256).k(8).seed(1).build();
/// let mut hk = ParallelTopK::<u64>::new(cfg);
/// for i in 0..5000u64 {
///     hk.insert(&(i % 10)); // ten equal elephants
///     hk.insert(&(1000 + i)); // mice
/// }
/// let top: Vec<u64> = hk.top_k().into_iter().map(|(k, _)| k).collect();
/// assert!(top.iter().all(|&k| k < 10), "top-k must be the elephants");
/// ```
#[derive(Debug, Clone)]
pub struct ParallelTopK<K: FlowKey> {
    sketch: HkSketch,
    store: TopKStore<K>,
    cfg: HkConfig,
    /// Reusable batch-prolog scratch of prepared keys + cached slots.
    scratch: PreparedBatch,
}

impl<K: FlowKey> ParallelTopK<K> {
    /// Builds the algorithm from a configuration.
    pub fn new(cfg: HkConfig) -> Self {
        Self {
            sketch: HkSketch::new(&cfg),
            store: TopKStore::new(cfg.store, cfg.k),
            cfg,
            scratch: PreparedBatch::new(),
        }
    }

    /// Constructor from a total memory budget in bytes (Section VI-A
    /// accounting: Stream-Summary with `m = k` entries plus the sketch).
    pub fn with_memory(bytes: usize, k: usize, seed: u64) -> Self {
        let store_bytes = k * (K::ENCODED_LEN + 4);
        let sketch_bytes = bytes.saturating_sub(store_bytes).max(8);
        let cfg = HkConfig::builder()
            .memory_bytes(sketch_bytes)
            .k(k)
            .seed(seed)
            .build();
        Self::new(cfg)
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &HkSketch {
        &self.sketch
    }

    /// Mutable access for the [`crate::merge`] machinery.
    pub(crate) fn sketch_mut(&mut self) -> &mut HkSketch {
        &mut self.sketch
    }

    /// Offers a flow with an externally derived estimate to the top-k
    /// store (collector-side path: no Optimization I gate, estimates
    /// arrive in arbitrary steps rather than +1 increments).
    pub(crate) fn offer(&mut self, key: K, estimate: u64) {
        if self.store.contains(&key) {
            self.store.update_max(&key, estimate);
        } else if !self.store.is_full() || estimate > self.store.nmin() {
            self.store.admit(key, estimate);
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &HkConfig {
        &self.cfg
    }

    /// Insertion-outcome counters since construction or [`reset`](Self::reset).
    pub fn stats(&self) -> &InsertStats {
        self.sketch.stats()
    }

    /// Clears all measurement state for a new epoch, keeping the
    /// configuration. Used by periodic network-wide collection (paper
    /// footnote 2), where each switch reports and resets per period.
    pub fn reset(&mut self) {
        self.sketch.reset();
        self.store = TopKStore::new(self.cfg.store, self.cfg.k);
    }

    /// Restores the instance to its exact as-constructed state —
    /// buckets zeroed, decay RNG rewound, store emptied — so it is
    /// indistinguishable from `ParallelTopK::new(cfg)` while keeping
    /// its (already page-resident) allocations. The sliding window
    /// recycles evicted epochs through this instead of allocating.
    pub fn recycle(&mut self) {
        self.sketch.recycle();
        self.store = TopKStore::new(self.cfg.store, self.cfg.k);
    }

    /// Queries an already-prepared flow (the sliding window prepares a
    /// candidate once and queries every epoch with it).
    #[inline]
    pub fn query_prepared(&self, p: &PreparedKey) -> u64 {
        self.sketch.query_prepared(p)
    }

    /// Keeps only the monitored flows for which `keep` returns true;
    /// the sketch is untouched. This is the reshard carry: a child
    /// restored from a parent checkpoint keeps the whole (conservative,
    /// never-overestimating) sketch but reports only the flows the new
    /// lane map routes to it.
    pub fn retain_monitored(&mut self, keep: &mut dyn FnMut(&K) -> bool) {
        self.store.retain(keep);
    }

    /// The insert body (Algorithm 1), generic over how bucket slots are
    /// obtained (on demand for the scalar path, cached for the batched
    /// path).
    fn insert_keyed<S: KeySlots>(&mut self, key: &K, s: &S) {
        // Step 1: is the flow already monitored?
        let flag = self.store.contains(key);
        let nmin = self.store.nmin();

        // Step 2: per-array bucket update (Algorithm 1 lines 4-20, the
        // word-level walk in [`HkSketch::walk_parallel`]).
        let (heavy_v, blocked) = self.sketch.walk_parallel(s, flag, nmin);
        if blocked {
            self.sketch.stats_mut().blocked += 1;
            self.sketch.note_blocked();
        }

        // Step 3: top-k store update (Algorithm 1 lines 21-25).
        if flag {
            self.store.update_max(key, heavy_v);
        } else if !self.store.is_full() {
            if heavy_v > 0 {
                self.store.admit(*key, heavy_v);
                self.sketch.stats_mut().admissions += 1;
            }
        } else if heavy_v == nmin + 1 {
            // Optimization I: only the exact n_min + 1 estimate is a
            // legitimate promotion; anything larger is a fingerprint
            // collision (Theorem 1).
            self.store.admit(*key, heavy_v);
            self.sketch.stats_mut().admissions += 1;
        } else if heavy_v > nmin {
            self.sketch.stats_mut().admissions_rejected += 1;
        }
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for ParallelTopK<K> {
    fn insert(&mut self, key: &K) {
        let kb = key.key_bytes();
        let p = self.sketch.prepare(kb.as_slice());
        self.insert_prepared(key, &p);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        // Prolog: hash the whole batch into the scratch buffer, then walk
        // buckets in pre-touched blocks — the shared body lives in
        // `sketch::hk_insert_batch_body`.
        crate::sketch::hk_insert_batch_body!(self, keys);
    }

    fn query(&self, key: &K) -> u64 {
        let kb = key.key_bytes();
        self.sketch.query(kb.as_slice())
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        self.store.sorted_desc()
    }

    fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes() + self.store.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "HK-Parallel"
    }
}

impl<K: FlowKey> PreparedInsert<K> for ParallelTopK<K> {
    fn hash_spec(&self) -> HashSpec {
        self.sketch.hash_spec()
    }

    fn insert_prepared(&mut self, key: &K, p: &PreparedKey) {
        self.insert_keyed(key, p);
    }

    fn insert_prepared_batch(&mut self, keys: &[K], prepared: &[PreparedKey]) {
        // Hash-once handoff: the upstream stage already prepared every
        // key; rebuild the slot table locally and go straight to the
        // pre-touched block walk.
        crate::sketch::hk_insert_prepared_batch_body!(self, keys, prepared);
    }

    fn consumes_prepared(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExpansionPolicy;

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).k(k).seed(5).build()
    }

    #[test]
    fn elephants_beat_mice() {
        let mut hk = ParallelTopK::<u64>::new(cfg(256, 5));
        // 5 elephants with 2000 packets each, 5000 distinct mice.
        for round in 0..2000u64 {
            for e in 0..5u64 {
                hk.insert(&e);
            }
            hk.insert(&(10_000 + round * 2));
            hk.insert(&(10_001 + round * 2));
        }
        let top: Vec<u64> = hk.top_k().into_iter().map(|(k, _)| k).collect();
        assert_eq!(top.len(), 5);
        assert!(top.iter().all(|&k| k < 5), "top = {top:?}");
    }

    #[test]
    fn no_overestimation_of_reported_sizes() {
        use std::collections::HashMap;
        let mut hk = ParallelTopK::<u64>::new(cfg(128, 8));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 1u64;
        for _ in 0..30_000 {
            // Cheap xorshift for a skewed-ish stream.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = state % 64;
            let f = if f < 8 { f } else { 8 + state % 2000 };
            hk.insert(&f);
            *truth.entry(f).or_insert(0) += 1;
        }
        for (f, est) in hk.top_k() {
            assert!(
                est <= truth[&f],
                "flow {f}: estimate {est} exceeds truth {}",
                truth[&f]
            );
        }
    }

    #[test]
    fn optimization_i_rejects_collision_sizes() {
        // A flow not in the store whose estimate jumps past nmin+1 must
        // not be admitted. We simulate by filling the store with large
        // flows, then giving a newcomer a colliding (large) estimate: we
        // can't force a fingerprint collision deterministically through
        // the public API, so instead verify the admission arithmetic on
        // the store level: after the store is full, every newly admitted
        // flow entered with estimate nmin+1.
        let mut hk = ParallelTopK::<u64>::new(cfg(512, 4));
        for f in 0..4u64 {
            for _ in 0..100 {
                hk.insert(&f);
            }
        }
        assert!(hk.store.is_full());
        let nmin_before = hk.store.nmin();
        assert!(nmin_before > 50);
        // A brand-new flow cannot enter with fewer than nmin packets.
        for _ in 0..5 {
            hk.insert(&99);
        }
        assert!(!hk.store.contains(&99), "mouse must not displace elephants");
    }

    #[test]
    fn optimization_ii_freezes_foreign_buckets() {
        // Flow A grows big; its bucket counter C >= nmin. A colliding
        // non-monitored flow with the same fingerprint may not increment
        // past nmin. We approximate via direct sketch inspection: after
        // heavy traffic, insert a swarm of mice and check no bucket
        // counter exceeds the true elephant size.
        let mut hk = ParallelTopK::<u64>::new(cfg(64, 2));
        for _ in 0..5000 {
            hk.insert(&7);
        }
        let est_before = hk.query(&7);
        for m in 0..2000u64 {
            hk.insert(&(100 + m));
        }
        // The elephant's estimate may only have decayed, never grown.
        assert!(hk.query(&7) <= est_before);
    }

    #[test]
    fn expansion_gives_late_elephant_room() {
        let base = HkConfig::builder().arrays(2).width(2).k(2).seed(9);
        // Without expansion: fill both tiny arrays with giants.
        let mut hk_fixed = ParallelTopK::<u64>::new(base.clone().build());
        let mut hk_exp = ParallelTopK::<u64>::new(
            base.expansion(ExpansionPolicy {
                large_counter: 50,
                blocked_threshold: 100,
                max_arrays: 6,
            })
            .build(),
        );
        for hk in [&mut hk_fixed, &mut hk_exp] {
            for f in 0..4u64 {
                for _ in 0..2000 {
                    hk.insert(&f);
                }
            }
            // Late elephant hammers 3000 packets.
            for _ in 0..3000 {
                hk.insert(&999);
            }
        }
        assert_eq!(hk_fixed.sketch().expansions(), 0);
        assert!(
            hk_exp.sketch().expansions() >= 1,
            "expansion should have triggered"
        );
        // The expanded sketch must know the late elephant much better.
        assert!(
            hk_exp.query(&999) > hk_fixed.query(&999).saturating_add(500),
            "expanded {} vs fixed {}",
            hk_exp.query(&999),
            hk_fixed.query(&999)
        );
    }

    #[test]
    fn store_not_full_admits_any_positive_estimate() {
        let mut hk = ParallelTopK::<u64>::new(cfg(64, 10));
        hk.insert(&1);
        assert!(hk.store.contains(&1));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut hk = ParallelTopK::<u64>::new(cfg(64, 4));
            for i in 0..10_000u64 {
                hk.insert(&(i % 50));
            }
            hk.top_k()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_account_for_every_packet() {
        let mut hk = ParallelTopK::<u64>::new(cfg(32, 4));
        for i in 0..5000u64 {
            hk.insert(&(i % 100));
        }
        let s = *hk.stats();
        assert_eq!(s.packets, 5000);
        // Every packet touches d = 2 buckets; each touch is exactly one
        // of: empty claim, applied increment, gated increment, decay roll.
        let touches = s.empty_claims + s.increments + s.increments_gated + s.decay_rolls;
        assert_eq!(touches, 5000 * 2, "bucket-touch accounting leak");
        assert!(s.decays <= s.decay_rolls);
        assert!(s.replacements <= s.decays);
        // reset clears.
        hk.reset();
        assert_eq!(*hk.stats(), crate::stats::InsertStats::default());
    }

    #[test]
    fn stats_match_rate_high_when_flows_fit() {
        // 10 flows over 2x256 buckets: after warm-up every flow is held
        // and monitored, so nearly every touch is an applied increment.
        let mut hk = ParallelTopK::<u64>::new(cfg(256, 10));
        for i in 0..20_000u64 {
            hk.insert(&(i % 10));
        }
        let s = *hk.stats();
        assert!(s.match_rate() > 0.8, "match rate {}", s.match_rate());
        assert_eq!(s.admissions, 10, "each flow admitted exactly once");
    }
}
