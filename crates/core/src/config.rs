//! HeavyKeeper configuration.
//!
//! Defaults follow the paper's evaluation setup (Section VI-A): `d = 2`
//! arrays, 16-bit fingerprints, 16-bit counters, decay base `b = 1.08`,
//! and a Stream-Summary with `m = k` entries for top-k bookkeeping.

use crate::decay::DecayFn;

/// Which structure tracks the current top-k flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// The Stream-Summary used by the paper's implementation (O(1)
    /// amortized updates).
    StreamSummary,
    /// The min-heap the paper uses for exposition (O(log k) updates).
    MinHeap,
}

/// Section III-F dynamic expansion policy.
///
/// HeavyKeeper counts, in a global counter, how many insertions found all
/// `d` mapped buckets "large" (decay probability effectively zero, i.e.
/// counter at or above [`ExpansionPolicy::large_counter`]). When the
/// global counter exceeds [`ExpansionPolicy::blocked_threshold`], a new
/// array is added (up to [`ExpansionPolicy::max_arrays`]) so late-arriving
/// elephants still find room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionPolicy {
    /// A mapped counter at or above this value counts as "large".
    pub large_counter: u64,
    /// Add a new array when this many blocked insertions accumulate.
    pub blocked_threshold: u64,
    /// Hard cap on the number of arrays (including the initial `d`).
    pub max_arrays: usize,
}

impl Default for ExpansionPolicy {
    fn default() -> Self {
        Self {
            // b = 1.08: decay probability at C=120 is ~1e-4; the paper's
            // "large enough (e.g., 50)" guidance corresponds to p ≈ 0.02.
            large_counter: 120,
            blocked_threshold: 1024,
            max_arrays: 8,
        }
    }
}

/// Full configuration of a HeavyKeeper instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HkConfig {
    /// Number of arrays `d` (the paper evaluates with `d = 2`).
    pub arrays: usize,
    /// Buckets per array `w`.
    pub width: usize,
    /// Number of top flows to report.
    pub k: usize,
    /// Decay function; the paper's default is exponential with `b = 1.08`.
    pub decay: DecayFn,
    /// Fingerprint width in bits (paper: 16).
    pub fingerprint_bits: u32,
    /// Counter width in bits (paper: 16).
    pub counter_bits: u32,
    /// Master seed for hash functions and the decay RNG.
    pub seed: u64,
    /// Top-k bookkeeping structure.
    pub store: StoreKind,
    /// Optional Section III-F dynamic expansion.
    pub expansion: Option<ExpansionPolicy>,
}

impl HkConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> HkConfigBuilder {
        HkConfigBuilder::default()
    }

    /// Bytes per bucket under the paper's accounting.
    pub fn bucket_bytes(&self) -> usize {
        (self.fingerprint_bits as usize + self.counter_bits as usize).div_ceil(8)
    }

    /// Memory of the sketch arrays alone, in bytes.
    pub fn sketch_bytes(&self) -> usize {
        self.arrays * self.width * self.bucket_bytes()
    }

    /// Maximum value a bucket counter can hold.
    pub fn counter_max(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }
}

/// Builder for [`HkConfig`].
///
/// # Examples
///
/// ```
/// use heavykeeper::HkConfig;
/// // Paper setup: fit the sketch in 20 KB with d = 2 and k = 100.
/// let cfg = HkConfig::builder().memory_bytes(20 * 1024).k(100).build();
/// assert_eq!(cfg.arrays, 2);
/// assert!(cfg.sketch_bytes() <= 20 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct HkConfigBuilder {
    arrays: usize,
    width: Option<usize>,
    memory_bytes: Option<usize>,
    k: usize,
    decay: DecayFn,
    fingerprint_bits: u32,
    counter_bits: u32,
    seed: u64,
    store: StoreKind,
    expansion: Option<ExpansionPolicy>,
}

impl Default for HkConfigBuilder {
    fn default() -> Self {
        Self {
            arrays: 2,
            width: None,
            memory_bytes: None,
            k: 100,
            decay: DecayFn::default(),
            fingerprint_bits: 16,
            counter_bits: 16,
            seed: 0x5EED_CAFE,
            store: StoreKind::StreamSummary,
            expansion: None,
        }
    }
}

impl HkConfigBuilder {
    /// Sets the number of arrays `d`.
    pub fn arrays(mut self, d: usize) -> Self {
        self.arrays = d;
        self
    }

    /// Sets the per-array width `w` directly.
    pub fn width(mut self, w: usize) -> Self {
        self.width = Some(w);
        self
    }

    /// Sizes the sketch to fit a memory budget: `w` is derived so the
    /// arrays use at most `bytes` (paper experiments are parameterized by
    /// total memory, Section VI-A). Mutually exclusive with
    /// [`HkConfigBuilder::width`]; the later call wins.
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bytes = Some(bytes);
        self.width = None;
        self
    }

    /// Sets the number of reported flows `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the decay function.
    pub fn decay(mut self, decay: DecayFn) -> Self {
        self.decay = decay;
        self
    }

    /// Sets the exponential decay base `b` (shorthand for
    /// `decay(DecayFn::exponential(b))`).
    pub fn decay_base(mut self, b: f64) -> Self {
        self.decay = DecayFn::exponential(b);
        self
    }

    /// Sets the fingerprint width in bits.
    pub fn fingerprint_bits(mut self, bits: u32) -> Self {
        self.fingerprint_bits = bits;
        self
    }

    /// Sets the counter width in bits.
    pub fn counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the top-k bookkeeping structure.
    pub fn store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Enables Section III-F dynamic expansion.
    pub fn expansion(mut self, policy: ExpansionPolicy) -> Self {
        self.expansion = Some(policy);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (zero arrays/width/k, a
    /// memory budget too small for one bucket per array, fingerprint or
    /// counter widths out of range, or combined field widths that do
    /// not fit the packed 64-bit bucket word).
    pub fn build(self) -> HkConfig {
        assert!(self.arrays > 0, "need at least one array");
        assert!(self.k > 0, "k must be positive");
        assert!(
            self.fingerprint_bits > 0 && self.fingerprint_bits <= 32,
            "fingerprint width must be in 1..=32"
        );
        assert!(
            self.counter_bits > 0 && self.counter_bits < 64,
            "counter width must be in 1..=63"
        );
        assert!(
            self.fingerprint_bits + self.counter_bits <= 64,
            "fingerprint + counter bits must fit one packed 64-bit bucket"
        );
        let bucket_bytes =
            (self.fingerprint_bits as usize + self.counter_bits as usize).div_ceil(8);
        let width = match (self.width, self.memory_bytes) {
            (Some(w), _) => w,
            (None, Some(bytes)) => {
                let w = bytes / (self.arrays * bucket_bytes);
                assert!(w > 0, "memory budget too small for {} arrays", self.arrays);
                w
            }
            (None, None) => 1024,
        };
        assert!(width > 0, "width must be positive");
        HkConfig {
            arrays: self.arrays,
            width,
            k: self.k,
            decay: self.decay,
            fingerprint_bits: self.fingerprint_bits,
            counter_bits: self.counter_bits,
            seed: self.seed,
            store: self.store,
            expansion: self.expansion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HkConfig::builder().build();
        assert_eq!(cfg.arrays, 2);
        assert_eq!(cfg.fingerprint_bits, 16);
        assert_eq!(cfg.counter_bits, 16);
        assert_eq!(cfg.bucket_bytes(), 4);
        assert_eq!(cfg.counter_max(), 65_535);
        assert_eq!(cfg.store, StoreKind::StreamSummary);
        assert!(cfg.expansion.is_none());
    }

    #[test]
    fn memory_budget_derives_width() {
        // 20 KB, 2 arrays, 4-byte buckets → 2560 buckets per array.
        let cfg = HkConfig::builder().memory_bytes(20 * 1024).build();
        assert_eq!(cfg.width, 2560);
        assert!(cfg.sketch_bytes() <= 20 * 1024);
    }

    #[test]
    fn explicit_width_wins_over_budget() {
        let cfg = HkConfig::builder().memory_bytes(1024).width(7).build();
        assert_eq!(cfg.width, 7);
    }

    #[test]
    fn wider_fields_cost_more_memory() {
        let small = HkConfig::builder().memory_bytes(4096).build();
        let wide = HkConfig::builder()
            .memory_bytes(4096)
            .counter_bits(32)
            .build();
        assert!(wide.width < small.width);
    }

    #[test]
    #[should_panic(expected = "memory budget too small")]
    fn tiny_budget_panics() {
        HkConfig::builder().memory_bytes(1).build();
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        HkConfig::builder().k(0).build();
    }

    #[test]
    #[should_panic(expected = "fit one packed 64-bit bucket")]
    fn oversized_combined_widths_rejected() {
        // Each width is individually legal but together they exceed the
        // packed bucket word.
        HkConfig::builder()
            .fingerprint_bits(32)
            .counter_bits(40)
            .build();
    }

    #[test]
    fn maximal_combined_widths_accepted() {
        let cfg = HkConfig::builder()
            .fingerprint_bits(1)
            .counter_bits(63)
            .width(4)
            .build();
        assert_eq!(cfg.counter_max(), (1u64 << 63) - 1);
    }

    #[test]
    fn expansion_default_sane() {
        let p = ExpansionPolicy::default();
        assert!(p.large_counter > 0 && p.max_arrays >= 2);
    }
}
