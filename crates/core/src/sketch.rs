//! The raw HeavyKeeper sketch: `d` arrays of `(FP, C)` buckets.
//!
//! This type implements the data structure of Section III-B — hashing,
//! fingerprints, the three insertion cases with exponential-weakening
//! decay, and max-over-matching-buckets queries — without any top-k
//! bookkeeping. The three top-k variants ([`crate::BasicTopK`],
//! [`crate::ParallelTopK`], [`crate::MinimumTopK`]) drive it with their
//! respective insertion disciplines.
//!
//! ## Hashing
//!
//! The hot path computes **one** 64-bit hash per packet (like the
//! authors' C++ implementation) and derives everything from it:
//!
//! * per-array indices by the Kirsch–Mitzenmacher construction
//!   `h_j = h1 + j·h2` over the two 32-bit halves — a standard, provably
//!   adequate substitute for `d` independent hash functions;
//! * the fingerprint from an additional multiply-rotate fold of the same
//!   hash, so fingerprint equality does not imply index equality.

use crate::bucket::{Array, Bucket};
use crate::config::HkConfig;
use crate::decay::DecayTable;
use hk_common::prepared::HashSpec;
use hk_common::prng::XorShift64;

// The prepared-key derivation lives in `hk_common::prepared` (shared
// with baselines and the sharded engine); re-exported here because this
// is where it historically lived and where sketch-level callers look.
pub use hk_common::prepared::{prepare_key, PreparedKey};

/// Hard cap on the number of arrays, including Section III-F expansion.
pub const MAX_ARRAYS: usize = 16;

/// Batched-insert pre-touch block: the batch walk reads every bucket
/// line a block will need before updating any of it, so the CPU
/// overlaps the (random, miss-prone) loads of a whole block instead of
/// serializing hash→load→update per packet. Plain reads double as
/// software prefetch without `unsafe`; 64 packets × `d` lines sit well
/// inside L1 while giving the memory system a deep window.
pub(crate) const TOUCH_BLOCK: usize = 64;

/// The one shared body of the HK variants' `insert_batch`: take the
/// scratch buffer, prehash the batch, walk it in pre-touched
/// [`TOUCH_BLOCK`]s through `insert_prepared`, restore the buffer.
/// A macro rather than a helper function because the touch pass
/// borrows `$self.sketch` while the ingest pass needs `&mut $self` —
/// splitting that across a closure-taking function fights the borrow
/// checker for no codegen benefit.
macro_rules! hk_insert_batch_body {
    ($self:ident, $keys:ident) => {{
        let mut scratch = std::mem::take(&mut $self.scratch);
        $self.sketch.hash_spec().prepare_batch($keys, &mut scratch);
        let mut idx = 0;
        while idx < $keys.len() {
            let end = (idx + crate::sketch::TOUCH_BLOCK).min($keys.len());
            $self.sketch.touch_prepared(&scratch[idx..end]);
            for (key, p) in $keys[idx..end].iter().zip(&scratch[idx..end]) {
                $self.insert_prepared(key, p);
            }
            idx = end;
        }
        $self.scratch = scratch;
    }};
}

pub(crate) use hk_insert_batch_body;

/// The HeavyKeeper bucket matrix with decay machinery.
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, HkSketch};
/// let cfg = HkConfig::builder().arrays(2).width(64).seed(9).build();
/// let mut sk = HkSketch::new(&cfg);
/// let key = 42u64.to_le_bytes();
/// for _ in 0..100 {
///     sk.insert_basic(&key);
/// }
/// // No over-estimation: the estimate never exceeds the true count.
/// assert!(sk.query(&key) <= 100);
/// assert!(sk.query(&key) > 0);
/// ```
#[derive(Debug, Clone)]
pub struct HkSketch {
    arrays: Vec<Array>,
    decay_table: DecayTable,
    rng: XorShift64,
    seed: u64,
    fingerprint_mask: u32,
    counter_max: u64,
    width: usize,
    fingerprint_bits: u32,
    /// Section III-F global counter of blocked insertions.
    blocked: u64,
    expansion: Option<crate::config::ExpansionPolicy>,
    /// How many arrays were added by expansion (diagnostics).
    expansions: usize,
}

impl HkSketch {
    /// Builds the sketch described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.arrays` exceeds [`MAX_ARRAYS`].
    pub fn new(cfg: &HkConfig) -> Self {
        assert!(
            cfg.arrays <= MAX_ARRAYS,
            "at most {MAX_ARRAYS} arrays supported"
        );
        let arrays = (0..cfg.arrays).map(|_| Array::new(cfg.width)).collect();
        let fingerprint_mask = if cfg.fingerprint_bits == 32 {
            u32::MAX
        } else {
            (1u32 << cfg.fingerprint_bits) - 1
        };
        Self {
            arrays,
            decay_table: DecayTable::new(cfg.decay),
            rng: XorShift64::new(cfg.seed ^ 0xDECA_F00D),
            seed: cfg.seed,
            fingerprint_mask,
            counter_max: cfg.counter_max(),
            width: cfg.width,
            fingerprint_bits: cfg.fingerprint_bits,
            blocked: 0,
            expansion: cfg.expansion,
            expansions: 0,
        }
    }

    /// Number of arrays `d` (grows under expansion).
    #[inline]
    pub fn arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Buckets per array `w`.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum value a counter may hold (from the configured bit width).
    #[inline]
    pub fn counter_max(&self) -> u64 {
        self.counter_max
    }

    /// The master seed this sketch hashes with. Two sketches agree on
    /// bucket placement and fingerprints iff they share seed, width and
    /// fingerprint width — the compatibility precondition for
    /// [`merge`](crate::merge) operations.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configured fingerprint width in bits.
    #[inline]
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// The spec under which this sketch prepares keys (seed +
    /// fingerprint mask); prepared keys are portable between parties
    /// with equal specs.
    #[inline]
    pub fn hash_spec(&self) -> HashSpec {
        HashSpec {
            seed: self.seed,
            fingerprint_mask: self.fingerprint_mask,
        }
    }

    /// Hashes a flow key once and derives all per-packet hash state.
    #[inline]
    pub fn prepare(&self, key_bytes: &[u8]) -> PreparedKey {
        prepare_key(self.seed, self.fingerprint_mask, key_bytes)
    }

    /// The flow's fingerprint (convenience wrapper over
    /// [`HkSketch::prepare`]).
    #[inline]
    pub fn fingerprint(&self, key_bytes: &[u8]) -> u32 {
        self.prepare(key_bytes).fp
    }

    /// The bucket index array `j` maps this key to.
    #[inline]
    pub fn slot(&self, j: usize, p: &PreparedKey) -> usize {
        p.slot(j, self.width)
    }

    /// Immutable access to a bucket.
    #[inline]
    pub fn bucket(&self, j: usize, i: usize) -> &Bucket {
        self.arrays[j].bucket(i)
    }

    /// Mutable access to a bucket (used by the variant insert routines).
    #[inline]
    pub fn bucket_mut(&mut self, j: usize, i: usize) -> &mut Bucket {
        self.arrays[j].bucket_mut(i)
    }

    /// Rolls the decay coin for counter value `c`: true means decay.
    ///
    /// Uses the precomputed integer-threshold table: one table read and
    /// one 64-bit compare, no floating point on the hot path.
    #[inline]
    pub fn decay_roll(&mut self, c: u64) -> bool {
        let t = self.decay_table.threshold(c);
        t != 0 && self.rng.next_u64_raw() < t
    }

    /// Plays `weight` opposing unit-decay trials against a counter at
    /// value `c` — the weighted generalization of [`Self::decay_roll`].
    ///
    /// Semantically equivalent to running the Case-3 coin `weight` times
    /// (counter value, and hence the probability, updating after every
    /// successful decay), but implemented with geometric skipping: per
    /// counter level one uniform draw samples how many trials pass until
    /// the first success, so the cost is `O(decays)` rather than
    /// `O(weight)`. Elephant-held buckets (probability ≈ 0) exit after a
    /// single table read.
    ///
    /// Returns `(new_count, remaining_weight)`; `remaining_weight > 0`
    /// only when the counter reached 0 with trials to spare, in which
    /// case the caller claims the bucket for the new flow (the weighted
    /// analogue of "replace the fingerprint and set `C = 1`").
    pub fn weighted_decay_roll(&mut self, c: u64, weight: u64) -> (u64, u64) {
        let mut c = c;
        let mut w = weight;
        while w > 0 && c > 0 {
            let p = self.decay_table.probability(c);
            if p <= 0.0 {
                // Past the table cutoff: effectively immovable.
                return (c, 0);
            }
            if p >= 1.0 {
                c -= 1;
                w -= 1;
                continue;
            }
            // Trials until the first success ~ Geometric(p). The draw is
            // mapped into (0, 1]: zero is excluded so ln is finite.
            let u = ((self.rng.next_u64_raw() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
            let skip = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
            if skip > w {
                return (c, 0);
            }
            w -= skip;
            c -= 1;
        }
        (c, w)
    }

    /// Increments a bucket counter, saturating at the configured width.
    #[inline]
    pub fn saturating_increment(&mut self, j: usize, i: usize) -> u64 {
        let max = self.counter_max;
        let b = self.arrays[j].bucket_mut(i);
        if b.count < max {
            b.count += 1;
        }
        b.count
    }

    /// Pulls every bucket line the prepared keys map to into cache by
    /// reading it (plain reads double as software prefetch; state is
    /// untouched). The batched insert paths call this one
    /// [`TOUCH_BLOCK`]-sized block ahead of the update walk so the
    /// block's random loads overlap instead of serializing behind each
    /// packet's update.
    #[inline]
    pub fn touch_prepared(&self, prepared: &[PreparedKey]) {
        let mut acc = 0u64;
        for p in prepared {
            for j in 0..self.arrays.len() {
                acc = acc.wrapping_add(self.arrays[j].bucket(p.slot(j, self.width)).count);
            }
        }
        // Keep the loads observable so they are not optimized away.
        std::hint::black_box(acc);
    }

    /// Queries the estimated size of a prepared flow: the maximum counter
    /// among mapped buckets whose fingerprint matches (Section III-B,
    /// Query). Returns 0 when no mapped bucket holds the flow.
    pub fn query_prepared(&self, p: &PreparedKey) -> u64 {
        let mut best = 0;
        for j in 0..self.arrays.len() {
            let b = self.arrays[j].bucket(self.slot(j, p));
            if b.fp == p.fp && b.count > best {
                best = b.count;
            }
        }
        best
    }

    /// Convenience query from raw key bytes.
    pub fn query(&self, key_bytes: &[u8]) -> u64 {
        self.query_prepared(&self.prepare(key_bytes))
    }

    /// The basic insertion of Section III-B: apply Cases 1–3 in *every*
    /// mapped bucket, then return the post-insert estimate.
    ///
    /// * Case 1 — empty bucket: take it with `C = 1`.
    /// * Case 2 — fingerprint match: `C += 1`.
    /// * Case 3 — held by another flow: decay with probability
    ///   `P_decay(C)`; if `C` hits 0, replace the fingerprint and set
    ///   `C = 1`.
    pub fn insert_basic(&mut self, key_bytes: &[u8]) -> u64 {
        let p = self.prepare(key_bytes);
        self.insert_basic_prepared(&p)
    }

    /// [`HkSketch::insert_basic`] on an already-prepared key.
    pub fn insert_basic_prepared(&mut self, p: &PreparedKey) -> u64 {
        let mut estimate = 0u64;
        for j in 0..self.arrays.len() {
            let i = self.slot(j, p);
            let bucket = *self.arrays[j].bucket(i);
            if bucket.is_empty() {
                // Case 1.
                let b = self.arrays[j].bucket_mut(i);
                b.fp = p.fp;
                b.count = 1;
                estimate = estimate.max(1);
            } else if bucket.fp == p.fp {
                // Case 2.
                let c = self.saturating_increment(j, i);
                estimate = estimate.max(c);
            } else {
                // Case 3.
                if self.decay_roll(bucket.count) {
                    let b = self.arrays[j].bucket_mut(i);
                    b.count -= 1;
                    if b.count == 0 {
                        b.fp = p.fp;
                        b.count = 1;
                        estimate = estimate.max(1);
                    }
                }
            }
        }
        estimate
    }

    /// Records a blocked insertion (Section III-F): every mapped bucket
    /// was held by another flow with a "large" counter. When the global
    /// counter crosses the policy threshold, a new array is appended.
    ///
    /// Returns `true` if an array was added.
    pub fn note_blocked(&mut self) -> bool {
        let Some(policy) = self.expansion else {
            return false;
        };
        self.blocked += 1;
        if self.blocked > policy.blocked_threshold
            && self.arrays.len() < policy.max_arrays.min(MAX_ARRAYS)
        {
            self.arrays.push(Array::new(self.width));
            self.blocked = 0;
            self.expansions += 1;
            return true;
        }
        false
    }

    /// True if, for a non-matching flow, a bucket counter counts as
    /// "large" under the expansion policy (never true when expansion is
    /// disabled).
    #[inline]
    pub fn is_large_for_expansion(&self, count: u64) -> bool {
        match self.expansion {
            Some(p) => count >= p.large_counter,
            None => false,
        }
    }

    /// Number of arrays added by Section III-F expansion so far.
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    /// Current value of the global blocked counter.
    pub fn blocked_count(&self) -> u64 {
        self.blocked
    }

    /// Accounted memory of the bucket matrix in bytes: each bucket is
    /// charged `fingerprint_bits + counter_bits` bits like the paper's
    /// packed 16+16 layout.
    pub fn memory_bytes(&self) -> usize {
        let bucket_bits =
            self.fingerprint_bits as usize + (64 - self.counter_max.leading_zeros() as usize);
        self.arrays.len() * self.width * bucket_bits.div_ceil(8)
    }

    /// Total non-empty buckets (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.arrays.iter().map(Array::occupancy).sum()
    }

    /// Clears every bucket and the blocked counter, keeping the
    /// configuration (including any arrays added by expansion).
    ///
    /// Network-wide measurement resets sketches at every reporting
    /// period (paper footnote 2: "sketches in different switches are
    /// often periodically sent to a collector").
    pub fn reset(&mut self) {
        for a in &mut self.arrays {
            for i in 0..a.width() {
                *a.bucket_mut(i) = Bucket::default();
            }
        }
        self.blocked = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExpansionPolicy, HkConfig};
    use hk_common::prng::XorShift64;

    fn cfg(w: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).seed(7).build()
    }

    #[test]
    fn case1_takes_empty_bucket() {
        let mut sk = HkSketch::new(&cfg(16));
        let key = 1u64.to_le_bytes();
        let est = sk.insert_basic(&key);
        assert_eq!(est, 1);
        assert_eq!(sk.query(&key), 1);
    }

    #[test]
    fn case2_increments_matching() {
        let mut sk = HkSketch::new(&cfg(16));
        let key = 1u64.to_le_bytes();
        for expect in 1..=50u64 {
            let est = sk.insert_basic(&key);
            assert_eq!(est, expect, "uncontended flow counts exactly");
        }
    }

    #[test]
    fn prepared_key_fields_consistent() {
        let sk = HkSketch::new(&cfg(64));
        let key = 9u64.to_le_bytes();
        let p1 = sk.prepare(&key);
        let p2 = sk.prepare(&key);
        assert_eq!(p1, p2, "preparation is deterministic");
        assert!(p1.fp > 0, "fingerprint 0 is reserved for empty buckets");
        for j in 0..2 {
            assert!(sk.slot(j, &p1) < 64);
        }
    }

    #[test]
    fn distinct_arrays_map_to_distinct_slots_usually() {
        // Kirsch-Mitzenmacher derivation: the two arrays' slots for one
        // key agree only ~1/w of the time.
        let sk = HkSketch::new(&cfg(64));
        let mut agree = 0;
        let n = 10_000u64;
        for v in 0..n {
            let p = sk.prepare(&v.to_le_bytes());
            if sk.slot(0, &p) == sk.slot(1, &p) {
                agree += 1;
            }
        }
        let frac = agree as f64 / n as f64;
        assert!(frac < 0.05, "arrays too correlated: {frac}");
    }

    #[test]
    fn fingerprint_not_determined_by_slot() {
        // Flows in the same bucket must still have diverse fingerprints.
        let sk = HkSketch::new(&cfg(4));
        let mut fps_in_slot0 = std::collections::HashSet::new();
        for v in 0..2000u64 {
            let p = sk.prepare(&v.to_le_bytes());
            if sk.slot(0, &p) == 0 {
                fps_in_slot0.insert(p.fp);
            }
        }
        assert!(fps_in_slot0.len() > 100, "fingerprints collapse with slot");
    }

    #[test]
    fn no_overestimation_under_contention() {
        // Theorem 2: with no fingerprint collision, a counter never
        // exceeds the true size of the held flow. Stream two flows into
        // a 1-bucket sketch: collisions are forced.
        let cfg = HkConfig::builder().arrays(1).width(1).seed(3).build();
        let mut sk = HkSketch::new(&cfg);
        let (ka, kb) = (1u64.to_le_bytes(), 2u64.to_le_bytes());
        assert_ne!(sk.fingerprint(&ka), sk.fingerprint(&kb));
        let (mut na, mut nb) = (0u64, 0u64);
        let mut rng = XorShift64::new(99);
        for _ in 0..10_000 {
            if rng.bernoulli(0.7) {
                sk.insert_basic(&ka);
                na += 1;
            } else {
                sk.insert_basic(&kb);
                nb += 1;
            }
            assert!(sk.query(&ka) <= na);
            assert!(sk.query(&kb) <= nb);
        }
    }

    #[test]
    fn counter_never_zero_while_held() {
        // "As long as flows are mapped to a bucket, its counter field
        // will never be 0": after any insert, a previously non-empty
        // bucket stays non-empty.
        let cfg = HkConfig::builder().arrays(1).width(1).seed(5).build();
        let mut sk = HkSketch::new(&cfg);
        sk.insert_basic(&1u64.to_le_bytes());
        for v in 2..500u64 {
            sk.insert_basic(&v.to_le_bytes());
            assert!(sk.bucket(0, 0).count >= 1);
        }
    }

    #[test]
    fn mouse_decays_away_elephant_survives() {
        let cfg = HkConfig::builder().arrays(1).width(1).seed(11).build();
        let mut sk = HkSketch::new(&cfg);
        let el = 77u64.to_le_bytes();
        let mut rng = XorShift64::new(1);
        for i in 0..20_000u64 {
            if rng.bernoulli(0.5) {
                sk.insert_basic(&el);
            } else {
                sk.insert_basic(&(1000 + i).to_le_bytes());
            }
        }
        let est = sk.query(&el);
        assert!(est > 5_000, "elephant estimate {est} too low");
    }

    #[test]
    fn query_unknown_flow_is_zero() {
        let sk = HkSketch::new(&cfg(8));
        assert_eq!(sk.query(&9u64.to_le_bytes()), 0);
    }

    #[test]
    fn counter_saturates_at_bit_width() {
        let cfg = HkConfig::builder()
            .arrays(1)
            .width(4)
            .counter_bits(4)
            .seed(2)
            .build();
        let mut sk = HkSketch::new(&cfg);
        let key = 3u64.to_le_bytes();
        for _ in 0..100 {
            sk.insert_basic(&key);
        }
        assert_eq!(sk.query(&key), 15, "4-bit counter must saturate at 15");
    }

    #[test]
    fn expansion_adds_array_after_threshold() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(4)
            .expansion(ExpansionPolicy {
                large_counter: 10,
                blocked_threshold: 5,
                max_arrays: 3,
            })
            .build();
        let mut sk = HkSketch::new(&cfg);
        assert_eq!(sk.arrays(), 2);
        let mut added = false;
        for _ in 0..10 {
            added |= sk.note_blocked();
        }
        assert!(added);
        assert_eq!(sk.arrays(), 3);
        assert_eq!(sk.expansions(), 1);
        // Capped at max_arrays.
        for _ in 0..100 {
            sk.note_blocked();
        }
        assert_eq!(sk.arrays(), 3);
    }

    #[test]
    fn expansion_disabled_never_expands() {
        let mut sk = HkSketch::new(&cfg(4));
        for _ in 0..10_000 {
            assert!(!sk.note_blocked());
        }
        assert_eq!(sk.arrays(), 2);
        assert!(!sk.is_large_for_expansion(1 << 30));
    }

    #[test]
    fn memory_accounting_16_16() {
        // 2 arrays x 100 buckets x 4 bytes = 800 bytes.
        let cfg = HkConfig::builder().arrays(2).width(100).build();
        let sk = HkSketch::new(&cfg);
        assert_eq!(sk.memory_bytes(), 800);
    }

    #[test]
    fn reset_clears_state() {
        let mut sk = HkSketch::new(&cfg(16));
        for v in 0..100u64 {
            sk.insert_basic(&v.to_le_bytes());
        }
        assert!(sk.occupancy() > 0);
        sk.reset();
        assert_eq!(sk.occupancy(), 0);
        assert_eq!(sk.blocked_count(), 0);
        assert_eq!(sk.query(&1u64.to_le_bytes()), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut sk = HkSketch::new(&cfg(32));
            let mut rng = XorShift64::new(4);
            for _ in 0..5000 {
                let v = rng.next_u64_raw() % 100;
                sk.insert_basic(&v.to_le_bytes());
            }
            sk.query(&1u64.to_le_bytes())
        };
        assert_eq!(mk(), mk());
    }
}
