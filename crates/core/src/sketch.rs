//! The raw HeavyKeeper sketch: a packed `d × w` bucket matrix.
//!
//! This type implements the data structure of Section III-B — hashing,
//! fingerprints, the three insertion cases with exponential-weakening
//! decay, and max-over-matching-buckets queries — without any top-k
//! bookkeeping. The three top-k variants ([`crate::BasicTopK`],
//! [`crate::ParallelTopK`], [`crate::MinimumTopK`]) drive it with their
//! respective insertion disciplines.
//!
//! ## Storage
//!
//! Buckets live in one contiguous, 64-byte-aligned
//! [`BucketMatrix`](crate::bucket::BucketMatrix): each bucket is a
//! single packed `u64` word (counter low, fingerprint high — see
//! [`crate::bucket`]), so the per-packet work on each of the `d` mapped
//! buckets is one load, a few register ops, and at most one store.
//! Eight buckets share a cache line where the old padded
//! `Vec<Array>`-of-`Vec<Bucket>` layout fit four behind two pointer
//! hops — on large sketches the random bucket loads dominate, and this
//! halves the lines touched per packet.
//!
//! ## Hashing
//!
//! The hot path computes **one** 64-bit hash per packet (like the
//! authors' C++ implementation) and derives everything from it:
//!
//! * per-array indices by the Kirsch–Mitzenmacher construction
//!   `h_j = h1 + j·h2` over the two 32-bit halves — a standard, provably
//!   adequate substitute for `d` independent hash functions;
//! * the fingerprint from an additional multiply-rotate fold of the same
//!   hash, so fingerprint equality does not imply index equality.
//!
//! The batched paths go one step further: the batch prolog caches each
//! packet's per-array bucket index in the
//! [`PreparedBatch`](hk_common::prepared::PreparedBatch) scratch's flat
//! slot table, so the pre-touch pass, the insert pass, and the
//! post-insert query are pure gathers over cached offsets — no index
//! rederivation once the prolog has run. Insert/query bodies are
//! generic over [`KeySlots`], which the scalar path satisfies with a
//! plain [`PreparedKey`] (slots derived on demand).

use crate::bucket::{Bucket, BucketMatrix, PackedLayout};
use crate::config::HkConfig;
use crate::decay::DecayTable;
use crate::stats::InsertStats;
use hk_common::prepared::{HashSpec, KeySlots, PreparedBatch};
use hk_common::prng::XorShift64;

// The prepared-key derivation lives in `hk_common::prepared` (shared
// with baselines and the sharded engine); re-exported here because this
// is where it historically lived and where sketch-level callers look.
pub use hk_common::prepared::{prepare_key, PreparedKey};

/// Hard cap on the number of arrays, including Section III-F expansion.
pub const MAX_ARRAYS: usize = 16;

/// Batched-insert pre-touch block: the batch walk reads every bucket
/// line a block will need before updating any of it, so the CPU
/// overlaps the (random, miss-prone) loads of a whole block instead of
/// serializing hash→load→update per packet. Plain reads double as
/// software prefetch without `unsafe`; 64 packets × `d` lines sit well
/// inside L1 while giving the memory system a deep window.
pub(crate) const TOUCH_BLOCK: usize = 64;

/// The one shared body of the HK variants' `insert_batch`: take the
/// scratch buffer, prehash the batch (caching per-array bucket slots),
/// walk it in pre-touched [`TOUCH_BLOCK`]s through the variant's
/// slot-generic `insert_keyed`, restore the buffer.
macro_rules! hk_insert_batch_body {
    ($self:ident, $keys:ident) => {{
        let mut scratch = std::mem::take(&mut $self.scratch);
        $self.sketch.prepare_batch($keys, &mut scratch);
        crate::sketch::hk_walk_batch_body!($self, $keys, scratch);
        $self.scratch = scratch;
    }};
}

pub(crate) use hk_insert_batch_body;

/// The hash-once sibling of [`hk_insert_batch_body`]: the upstream
/// stage (sharded dispatcher, RSS producer) already hashed every key,
/// so the prolog rebuilds the slot-table scratch from the shipped
/// [`PreparedKey`]s ([`PreparedBatch::prepare_from`] — a memcpy plus
/// the slot multiply-shifts, no hashing) and runs the identical
/// pre-touched block walk.
macro_rules! hk_insert_prepared_batch_body {
    ($self:ident, $keys:ident, $prepared:ident) => {{
        debug_assert_eq!($keys.len(), $prepared.len(), "misaligned prepared batch");
        let mut scratch = std::mem::take(&mut $self.scratch);
        $self.sketch.prepare_batch_from($prepared, &mut scratch);
        crate::sketch::hk_walk_batch_body!($self, $keys, scratch);
        $self.scratch = scratch;
    }};
}

pub(crate) use hk_insert_prepared_batch_body;

/// The shared epilog of the two batch prologs above: walk the prepared
/// scratch in pre-touched [`TOUCH_BLOCK`]s through the variant's
/// slot-generic `insert_keyed`.
/// A macro rather than a helper function because the touch pass
/// borrows `$self.sketch` while the ingest pass needs `&mut $self` —
/// splitting that across a closure-taking function fights the borrow
/// checker for no codegen benefit.
macro_rules! hk_walk_batch_body {
    ($self:ident, $keys:ident, $scratch:ident) => {{
        let mut idx = 0;
        while idx < $keys.len() {
            let end = (idx + crate::sketch::TOUCH_BLOCK).min($keys.len());
            $self.sketch.touch_batch(&$scratch, idx..end);
            for (off, key) in $keys[idx..end].iter().enumerate() {
                let entry = $scratch.entry(idx + off);
                $self.insert_keyed(key, &entry);
            }
            idx = end;
        }
    }};
}

pub(crate) use hk_walk_batch_body;

/// Matrix geometry diagnostics (the CLI's `--layout-report`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutReport {
    /// Arrays `d` (matrix rows).
    pub rows: usize,
    /// Buckets per array `w`.
    pub width: usize,
    /// Runtime bytes per bucket (one packed word).
    pub bucket_bytes: usize,
    /// Buckets sharing one 64-byte cache line.
    pub buckets_per_line: usize,
    /// Cache lines a single packet's bucket walk touches (one per
    /// array; each bucket op is a single word).
    pub lines_per_packet: usize,
    /// Runtime bytes of the whole matrix.
    pub runtime_bytes: usize,
    /// Accounted bytes under the paper's configured-bit-width charging.
    pub accounted_bytes: usize,
    /// Whether the live region starts on a 64-byte boundary.
    pub aligned: bool,
    /// Runtime fingerprint field width in bits.
    pub fp_field_bits: u32,
    /// Runtime counter field width in bits.
    pub count_field_bits: u32,
}

impl LayoutReport {
    /// Computes the report for a configuration without allocating the
    /// full matrix (a tiny probe matrix supplies the alignment bit —
    /// the allocator's behavior, not the size, decides it).
    pub fn for_config(cfg: &HkConfig) -> Self {
        let layout = PackedLayout::new(cfg.fingerprint_bits, cfg.counter_bits);
        let probe = BucketMatrix::new(1, 8, layout);
        Self::build(
            cfg.arrays,
            cfg.width,
            cfg.sketch_bytes(),
            probe.is_aligned(),
            layout,
        )
    }

    /// The one place report fields are derived from matrix geometry.
    fn build(
        rows: usize,
        width: usize,
        accounted_bytes: usize,
        aligned: bool,
        layout: PackedLayout,
    ) -> Self {
        LayoutReport {
            rows,
            width,
            bucket_bytes: std::mem::size_of::<u64>(),
            buckets_per_line: 64 / std::mem::size_of::<u64>(),
            lines_per_packet: rows,
            runtime_bytes: rows * width * std::mem::size_of::<u64>(),
            accounted_bytes,
            aligned,
            fp_field_bits: layout.fp_bits(),
            count_field_bits: layout.count_bits(),
        }
    }
}

impl std::fmt::Display for LayoutReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "bucket matrix: {} x {} packed buckets ({} B runtime, {} B accounted)",
            self.rows, self.width, self.runtime_bytes, self.accounted_bytes
        )?;
        writeln!(
            f,
            "bucket word:   {} B (fp {} bits | count {} bits), {} buckets/cache line",
            self.bucket_bytes, self.fp_field_bits, self.count_field_bits, self.buckets_per_line
        )?;
        write!(
            f,
            "access:        {} line(s) touched per packet, base 64-byte aligned: {}",
            self.lines_per_packet, self.aligned
        )
    }
}

/// The HeavyKeeper bucket matrix with decay machinery.
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, HkSketch};
/// let cfg = HkConfig::builder().arrays(2).width(64).seed(9).build();
/// let mut sk = HkSketch::new(&cfg);
/// let key = 42u64.to_le_bytes();
/// for _ in 0..100 {
///     sk.insert_basic(&key);
/// }
/// // No over-estimation: the estimate never exceeds the true count.
/// assert!(sk.query(&key) <= 100);
/// assert!(sk.query(&key) > 0);
/// ```
#[derive(Debug, Clone)]
pub struct HkSketch {
    matrix: BucketMatrix,
    decay_table: DecayTable,
    rng: XorShift64,
    seed: u64,
    fingerprint_mask: u32,
    counter_max: u64,
    width: usize,
    fingerprint_bits: u32,
    /// Section III-F global counter of blocked insertions.
    blocked: u64,
    expansion: Option<crate::config::ExpansionPolicy>,
    /// How many arrays were added by expansion (diagnostics).
    expansions: usize,
    /// Insertion-outcome counters, updated by the walk methods. Living
    /// on the sketch keeps every hot-loop counter behind the same base
    /// pointer as the buckets — one memory increment per event.
    stats: InsertStats,
}

impl HkSketch {
    /// Builds the sketch described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.arrays` exceeds [`MAX_ARRAYS`].
    pub fn new(cfg: &HkConfig) -> Self {
        assert!(
            cfg.arrays <= MAX_ARRAYS,
            "at most {MAX_ARRAYS} arrays supported"
        );
        let layout = PackedLayout::new(cfg.fingerprint_bits, cfg.counter_bits);
        let matrix = BucketMatrix::new(cfg.arrays, cfg.width, layout);
        let fingerprint_mask = if cfg.fingerprint_bits == 32 {
            u32::MAX
        } else {
            (1u32 << cfg.fingerprint_bits) - 1
        };
        Self {
            matrix,
            decay_table: DecayTable::new(cfg.decay),
            rng: XorShift64::new(cfg.seed ^ 0xDECA_F00D),
            seed: cfg.seed,
            fingerprint_mask,
            counter_max: cfg.counter_max(),
            width: cfg.width,
            fingerprint_bits: cfg.fingerprint_bits,
            blocked: 0,
            expansion: cfg.expansion,
            expansions: 0,
            stats: InsertStats::default(),
        }
    }

    /// Insertion-outcome counters since construction or
    /// [`HkSketch::reset`] (filled by the Parallel/Minimum walks).
    #[inline]
    pub fn stats(&self) -> &InsertStats {
        &self.stats
    }

    /// Mutable access for the variants' store-phase counters.
    #[inline]
    pub(crate) fn stats_mut(&mut self) -> &mut InsertStats {
        &mut self.stats
    }

    /// Number of arrays `d` (grows under expansion).
    #[inline]
    pub fn arrays(&self) -> usize {
        self.matrix.rows()
    }

    /// Buckets per array `w`.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum value a counter may hold (from the configured bit width).
    #[inline]
    pub fn counter_max(&self) -> u64 {
        self.counter_max
    }

    /// The master seed this sketch hashes with. Two sketches agree on
    /// bucket placement and fingerprints iff they share seed, width and
    /// fingerprint width — the compatibility precondition for
    /// [`merge`](crate::merge) operations.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configured fingerprint width in bits.
    #[inline]
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// The spec under which this sketch prepares keys (seed +
    /// fingerprint mask); prepared keys are portable between parties
    /// with equal specs.
    #[inline]
    pub fn hash_spec(&self) -> HashSpec {
        HashSpec {
            seed: self.seed,
            fingerprint_mask: self.fingerprint_mask,
        }
    }

    /// Hashes a flow key once and derives all per-packet hash state.
    #[inline]
    pub fn prepare(&self, key_bytes: &[u8]) -> PreparedKey {
        prepare_key(self.seed, self.fingerprint_mask, key_bytes)
    }

    /// Prehashes a whole batch into `out`, caching each key's bucket
    /// index for this sketch's current `(d, w)` geometry (the batch
    /// prolog; see [`PreparedBatch::prepare`]).
    #[inline]
    pub fn prepare_batch<K: hk_common::key::FlowKey>(&self, keys: &[K], out: &mut PreparedBatch) {
        out.prepare(&self.hash_spec(), keys, self.arrays(), self.width);
    }

    /// The hash-once batch prolog: rebuilds the slot-table scratch from
    /// keys an upstream stage already prepared under this sketch's
    /// [`HkSketch::hash_spec`] — no hashing, just the per-array slot
    /// derivation for the current `(d, w)` geometry (which only this
    /// side knows once Section III-F expansion runs mid-stream).
    #[inline]
    pub fn prepare_batch_from(&self, prepared: &[PreparedKey], out: &mut PreparedBatch) {
        out.prepare_from(prepared, self.arrays(), self.width);
    }

    /// The flow's fingerprint (convenience wrapper over
    /// [`HkSketch::prepare`]).
    #[inline]
    pub fn fingerprint(&self, key_bytes: &[u8]) -> u32 {
        self.prepare(key_bytes).fp
    }

    /// The bucket index array `j` maps this key to.
    #[inline]
    pub fn slot(&self, j: usize, p: &PreparedKey) -> usize {
        p.slot(j, self.width)
    }

    /// Reads a bucket (one packed-word load).
    #[inline]
    pub fn bucket(&self, j: usize, i: usize) -> Bucket {
        self.matrix.get(j, i)
    }

    /// Overwrites a bucket (one packed-word store). Debug-asserts the
    /// fields fit their runtime widths.
    #[inline]
    pub fn set_bucket(&mut self, j: usize, i: usize, b: Bucket) {
        self.matrix.set(j, i, b);
    }

    /// Read access to the packed matrix (diagnostics, merge walks).
    #[inline]
    pub(crate) fn matrix(&self) -> &BucketMatrix {
        &self.matrix
    }

    /// Mutable access to the packed matrix — the dirty-delta apply path
    /// seeds a reconstructed epoch from its baseline's words wholesale
    /// instead of round-tripping every bucket through unpack/pack.
    #[inline]
    pub(crate) fn matrix_mut(&mut self) -> &mut BucketMatrix {
        &mut self.matrix
    }

    /// A flat copy of the packed words (all rows contiguous) — the
    /// shadow snapshot the dirty-delta exporter diffs the next closed
    /// epoch against.
    #[inline]
    pub(crate) fn snapshot_words(&self) -> Vec<u64> {
        self.matrix.data().to_vec()
    }

    /// Matrix geometry diagnostics (the CLI's `--layout-report`).
    pub fn layout_report(&self) -> LayoutReport {
        LayoutReport::build(
            self.arrays(),
            self.width,
            self.memory_bytes(),
            self.matrix.is_aligned(),
            self.matrix.layout(),
        )
    }

    /// Rolls the decay coin for counter value `c`: true means decay.
    ///
    /// Uses the precomputed integer-threshold table: one table read and
    /// one 64-bit compare, no floating point on the hot path.
    #[inline]
    pub fn decay_roll(&mut self, c: u64) -> bool {
        let t = self.decay_table.threshold(c);
        t != 0 && self.rng.next_u64_raw() < t
    }

    /// Plays `weight` opposing unit-decay trials against a counter at
    /// value `c` — the weighted generalization of [`Self::decay_roll`].
    ///
    /// Semantically equivalent to running the Case-3 coin `weight` times
    /// (counter value, and hence the probability, updating after every
    /// successful decay), but implemented with geometric skipping: per
    /// counter level one uniform draw samples how many trials pass until
    /// the first success, so the cost is `O(decays)` rather than
    /// `O(weight)`. Elephant-held buckets (probability ≈ 0) exit after a
    /// single table read.
    ///
    /// Returns `(new_count, remaining_weight)`; `remaining_weight > 0`
    /// only when the counter reached 0 with trials to spare, in which
    /// case the caller claims the bucket for the new flow (the weighted
    /// analogue of "replace the fingerprint and set `C = 1`").
    pub fn weighted_decay_roll(&mut self, c: u64, weight: u64) -> (u64, u64) {
        let mut c = c;
        let mut w = weight;
        while w > 0 && c > 0 {
            let p = self.decay_table.probability(c);
            if p <= 0.0 {
                // Past the table cutoff: effectively immovable.
                return (c, 0);
            }
            if p >= 1.0 {
                c -= 1;
                w -= 1;
                continue;
            }
            // Trials until the first success ~ Geometric(p). The draw is
            // mapped into (0, 1]: zero is excluded so ln is finite.
            let u = ((self.rng.next_u64_raw() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
            let skip = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
            if skip > w {
                return (c, 0);
            }
            w -= skip;
            c -= 1;
        }
        (c, w)
    }

    /// Pulls every bucket line a range of batch-scratch entries maps
    /// to into cache by reading it — a straight gather over the
    /// prolog's flat slot table, one load per `(packet, array)`, no
    /// index derivation. Plain reads double as software prefetch
    /// without `unsafe`; the batched insert paths call this one
    /// [`TOUCH_BLOCK`]-sized block ahead of the update walk so the
    /// block's random loads overlap instead of serializing behind each
    /// packet's update. State is untouched.
    #[inline]
    pub fn touch_batch(&self, batch: &PreparedBatch, range: std::ops::Range<usize>) {
        let arrays = batch.arrays();
        let width = self.width;
        let words = self.matrix.data();
        let mut acc = 0u64;
        // Rows beyond the prepared geometry (expansion mid-batch) are
        // skipped: the touch is only a prefetch, partial coverage is
        // sound.
        for chunk in batch.slots_range(range).chunks_exact(arrays.max(1)) {
            let mut base = 0usize;
            for &slot in chunk {
                acc = acc.wrapping_add(words[base + slot as usize]);
                base += width;
            }
        }
        std::hint::black_box(acc);
    }

    /// Queries the estimated size of a prepared flow: the maximum counter
    /// among mapped buckets whose fingerprint matches (Section III-B,
    /// Query). Returns 0 when no mapped bucket holds the flow.
    pub fn query_prepared(&self, p: &PreparedKey) -> u64 {
        self.query_keyed(p)
    }

    /// [`HkSketch::query_prepared`] over any slot source — the batched
    /// paths pass cached-slot scratch entries so the query gathers over
    /// precomputed offsets.
    pub fn query_keyed<S: KeySlots>(&self, s: &S) -> u64 {
        let pfp = self.matrix.layout().packed_fp(s.key().fp);
        let mut best = 0;
        for j in 0..self.matrix.rows() {
            let word = self.matrix.word(j, s.slot(j, self.width));
            let count = self.matrix.layout().count(word);
            if self.matrix.layout().fp_matches(word, pfp) && count > best {
                best = count;
            }
        }
        best
    }

    /// Convenience query from raw key bytes.
    pub fn query(&self, key_bytes: &[u8]) -> u64 {
        self.query_prepared(&self.prepare(key_bytes))
    }

    /// The basic insertion of Section III-B: apply Cases 1–3 in *every*
    /// mapped bucket, then return the post-insert estimate.
    ///
    /// * Case 1 — empty bucket: take it with `C = 1`.
    /// * Case 2 — fingerprint match: `C += 1`.
    /// * Case 3 — held by another flow: decay with probability
    ///   `P_decay(C)`; if `C` hits 0, replace the fingerprint and set
    ///   `C = 1`.
    pub fn insert_basic(&mut self, key_bytes: &[u8]) -> u64 {
        let p = self.prepare(key_bytes);
        self.insert_basic_prepared(&p)
    }

    /// [`HkSketch::insert_basic`] on an already-prepared key.
    pub fn insert_basic_prepared(&mut self, p: &PreparedKey) -> u64 {
        self.insert_basic_keyed(p)
    }

    /// [`HkSketch::insert_basic_prepared`] over any slot source.
    ///
    /// Works on packed words with the fingerprint pre-shifted once per
    /// packet ([`PackedLayout::packed_fp`] + [`PackedLayout::fp_matches`]):
    /// per bucket one load, a few and/compare ops against self-resident
    /// fields, and at most one store. Keeping accesses self-relative
    /// (rather than hoisting masks into locals) keeps the loop's live
    /// register set — and with it the out-of-order window across
    /// packets — as small as possible.
    pub fn insert_basic_keyed<S: KeySlots>(&mut self, s: &S) -> u64 {
        let pfp = self.matrix.layout().packed_fp(s.key().fp);
        let mut estimate = 0u64;
        for j in 0..self.matrix.rows() {
            let i = s.slot(j, self.width);
            let word = self.matrix.word(j, i);
            let count = self.matrix.layout().count(word);
            if count == 0 {
                // Case 1.
                self.matrix.set_word(j, i, pfp | 1);
                estimate = estimate.max(1);
            } else if self.matrix.layout().fp_matches(word, pfp) {
                // Case 2 (saturating strictly below the field limit, so
                // the increment cannot carry into the fingerprint).
                if count < self.counter_max {
                    self.matrix.set_word(j, i, word + 1);
                    estimate = estimate.max(count + 1);
                } else {
                    estimate = estimate.max(count);
                }
            } else {
                // Case 3.
                if self.decay_roll(count) {
                    if count == 1 {
                        self.matrix.set_word(j, i, pfp | 1);
                        estimate = estimate.max(1);
                    } else {
                        self.matrix.set_word(j, i, word - 1);
                    }
                }
            }
        }
        estimate
    }

    /// The Parallel variant's per-packet bucket walk (Algorithm 1 lines
    /// 4–20), shared by the scalar and batched paths. `flag` is the
    /// monitored bit, `nmin` the admission floor; outcome counters land
    /// in [`HkSketch::stats`]. Returns `(HeavyK_V, blocked)`; the
    /// caller applies the top-k store update and, when `blocked`, the
    /// Section III-F bookkeeping.
    pub(crate) fn walk_parallel<S: KeySlots>(
        &mut self,
        s: &S,
        flag: bool,
        nmin: u64,
    ) -> (u64, bool) {
        self.stats.packets += 1;
        let pfp = self.matrix.layout().packed_fp(s.key().fp);
        let mut heavy_v = 0u64; // The paper's HeavyK_V.
        let mut blocked = self.matrix.rows() > 0; // Section III-F probe.
        for j in 0..self.matrix.rows() {
            let i = s.slot(j, self.width);
            let word = self.matrix.word(j, i);
            let count = self.matrix.layout().count(word);
            if count == 0 {
                // Case 1: take the empty bucket.
                self.matrix.set_word(j, i, pfp | 1);
                heavy_v = heavy_v.max(1);
                blocked = false;
                self.stats.empty_claims += 1;
            } else if self.matrix.layout().fp_matches(word, pfp) {
                // Case 2, gated by Optimization II. The optimization's
                // text says to "make no change" only when the counter
                // already *exceeds* n_min (such a match must be a
                // fingerprint collision), so the gate is `C <= n_min`.
                // (Algorithm 1's pseudo-code writes `C < n_min`, which
                // would live-lock: once the store holds k flows of size
                // n_min, no outside flow could ever reach n_min + 1.)
                blocked = false;
                if flag || count <= nmin {
                    if count < self.counter_max {
                        self.matrix.set_word(j, i, word + 1);
                        heavy_v = heavy_v.max(count + 1);
                    } else {
                        heavy_v = heavy_v.max(count);
                    }
                    self.stats.increments += 1;
                } else {
                    self.stats.increments_gated += 1;
                }
            } else {
                // Case 3: exponential-weakening decay.
                if !self.is_large_for_expansion(count) {
                    blocked = false;
                }
                self.stats.decay_rolls += 1;
                if self.decay_roll(count) {
                    self.stats.decays += 1;
                    if count == 1 {
                        self.matrix.set_word(j, i, pfp | 1);
                        heavy_v = heavy_v.max(1);
                        self.stats.replacements += 1;
                    } else {
                        self.matrix.set_word(j, i, word - 1);
                    }
                }
            }
        }
        (heavy_v, blocked)
    }

    /// The Minimum variant's per-packet bucket walk (Algorithm 2): one
    /// read-only scan over the `d` mapped buckets, then at most one
    /// bucket write — increment a match, claim the first empty, or
    /// decay-roll the first smallest. Outcome counters land in
    /// [`HkSketch::stats`]. Returns `(HeavyK_V, blocked)`; the caller
    /// applies the store update and, when `blocked`, calls
    /// [`HkSketch::note_blocked`] (deferred past the walk, which is
    /// state-equivalent: expansion only appends an empty row).
    pub(crate) fn walk_minimum<S: KeySlots>(
        &mut self,
        s: &S,
        flag: bool,
        nmin: u64,
    ) -> (u64, bool) {
        self.stats.packets += 1;
        let pfp = self.matrix.layout().packed_fp(s.key().fp);

        // Scan the d mapped buckets once, remembering what the write
        // phase needs ((j, i) pairs; counts read once).
        let mut matched: Option<(usize, usize, u64)> = None;
        let mut first_empty: Option<(usize, usize)> = None;
        let mut min_slot: Option<(usize, usize, u64)> = None;
        for j in 0..self.matrix.rows() {
            let i = s.slot(j, self.width);
            let word = self.matrix.word(j, i);
            let count = self.matrix.layout().count(word);
            if count == 0 {
                if first_empty.is_none() {
                    first_empty = Some((j, i));
                }
            } else {
                if matched.is_none() && self.matrix.layout().fp_matches(word, pfp) {
                    matched = Some((j, i, count));
                }
                if min_slot.is_none_or(|(_, _, m)| count < m) {
                    // Strict `<` keeps the *first* smallest (Situation 3).
                    min_slot = Some((j, i, count));
                }
            }
        }

        let mut heavy_v = 0u64;
        let mut blocked = false;

        // Step 2: increment a matching bucket if the gate allows (same
        // `C <= n_min` reading of Optimization II as the Parallel walk).
        let mut handled = false;
        if let Some((j, i, count)) = matched {
            if flag || count <= nmin {
                if count < self.counter_max {
                    self.matrix.set_word(j, i, self.matrix.word(j, i) + 1);
                    heavy_v = count + 1;
                } else {
                    heavy_v = count;
                }
                handled = true;
                self.stats.increments += 1;
            } else {
                self.stats.increments_gated += 1;
            }
        }

        // Step 3: claim the first empty bucket.
        if !handled {
            if let Some((j, i)) = first_empty {
                self.matrix.set_word(j, i, pfp | 1);
                heavy_v = 1;
                handled = true;
                self.stats.empty_claims += 1;
            }
        }

        // Step 4: minimum decay — roll against the first smallest counter.
        if !handled && matched.is_none() {
            if let Some((j, i, count)) = min_slot {
                if self.is_large_for_expansion(count) {
                    // Every bucket is at least as large as the minimum, so
                    // a large minimum means all d buckets are large:
                    // Section III-F's blocked situation.
                    blocked = true;
                }
                self.stats.decay_rolls += 1;
                if self.decay_roll(count) {
                    self.stats.decays += 1;
                    if count == 1 {
                        self.matrix.set_word(j, i, pfp | 1);
                        heavy_v = 1;
                        self.stats.replacements += 1;
                    } else {
                        self.matrix.set_word(j, i, self.matrix.word(j, i) - 1);
                    }
                }
            }
        }
        (heavy_v, blocked)
    }

    /// Records a blocked insertion (Section III-F): every mapped bucket
    /// was held by another flow with a "large" counter. When the global
    /// counter crosses the policy threshold, a new array is appended.
    ///
    /// Returns `true` if an array was added.
    pub fn note_blocked(&mut self) -> bool {
        let Some(policy) = self.expansion else {
            return false;
        };
        self.blocked += 1;
        if self.blocked > policy.blocked_threshold
            && self.matrix.rows() < policy.max_arrays.min(MAX_ARRAYS)
        {
            self.matrix.push_row();
            self.blocked = 0;
            self.expansions += 1;
            return true;
        }
        false
    }

    /// True if, for a non-matching flow, a bucket counter counts as
    /// "large" under the expansion policy (never true when expansion is
    /// disabled).
    #[inline]
    pub fn is_large_for_expansion(&self, count: u64) -> bool {
        match self.expansion {
            Some(p) => count >= p.large_counter,
            None => false,
        }
    }

    /// Number of arrays added by Section III-F expansion so far.
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    /// Current value of the global blocked counter.
    pub fn blocked_count(&self) -> u64 {
        self.blocked
    }

    /// Accounted memory of the bucket matrix in bytes: each bucket is
    /// charged `fingerprint_bits + counter_bits` bits like the paper's
    /// packed 16+16 layout.
    pub fn memory_bytes(&self) -> usize {
        let bucket_bits =
            self.fingerprint_bits as usize + (64 - self.counter_max.leading_zeros() as usize);
        self.matrix.rows() * self.width * bucket_bits.div_ceil(8)
    }

    /// Total non-empty buckets (diagnostics): a flat scan of the packed
    /// words.
    pub fn occupancy(&self) -> usize {
        self.matrix.occupancy()
    }

    /// Clears every bucket and the blocked counter, keeping the
    /// configuration (including any arrays added by expansion).
    ///
    /// One contiguous `fill(0)` over the matrix (the all-zero word is
    /// the all-empty bucket), not a per-bucket walk.
    ///
    /// Network-wide measurement resets sketches at every reporting
    /// period (paper footnote 2: "sketches in different switches are
    /// often periodically sent to a collector").
    pub fn reset(&mut self) {
        self.matrix.reset();
        self.blocked = 0;
        self.stats = InsertStats::default();
    }

    /// Restores the sketch to its exact as-constructed state: every
    /// bucket zero, the decay RNG rewound to its seed, expansion rows
    /// dropped, all counters cleared.
    ///
    /// Stronger than [`HkSketch::reset`] (which keeps the RNG stream and
    /// expansion rows): a recycled sketch is indistinguishable from
    /// `HkSketch::new(&cfg)` — the property the sliding window's epoch
    /// recycling relies on for bit-exactness with freshly allocated
    /// epochs. In the common un-expanded case this is one memset over
    /// the already-resident matrix, so no pages are faulted back in.
    pub fn recycle(&mut self) {
        if self.expansions > 0 {
            // Expansion grew the matrix; rebuild at the original
            // geometry (rare — only windows with expansion enabled).
            let rows = self.matrix.rows() - self.expansions;
            self.matrix = BucketMatrix::new(rows, self.width, self.matrix.layout());
            self.expansions = 0;
        } else {
            self.matrix.reset();
        }
        self.rng = XorShift64::new(self.seed ^ 0xDECA_F00D);
        self.blocked = 0;
        self.stats = InsertStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExpansionPolicy, HkConfig};
    use hk_common::prng::XorShift64;

    fn cfg(w: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).seed(7).build()
    }

    #[test]
    fn case1_takes_empty_bucket() {
        let mut sk = HkSketch::new(&cfg(16));
        let key = 1u64.to_le_bytes();
        let est = sk.insert_basic(&key);
        assert_eq!(est, 1);
        assert_eq!(sk.query(&key), 1);
    }

    #[test]
    fn case2_increments_matching() {
        let mut sk = HkSketch::new(&cfg(16));
        let key = 1u64.to_le_bytes();
        for expect in 1..=50u64 {
            let est = sk.insert_basic(&key);
            assert_eq!(est, expect, "uncontended flow counts exactly");
        }
    }

    #[test]
    fn prepared_key_fields_consistent() {
        let sk = HkSketch::new(&cfg(64));
        let key = 9u64.to_le_bytes();
        let p1 = sk.prepare(&key);
        let p2 = sk.prepare(&key);
        assert_eq!(p1, p2, "preparation is deterministic");
        assert!(p1.fp > 0, "fingerprint 0 is reserved for empty buckets");
        for j in 0..2 {
            assert!(sk.slot(j, &p1) < 64);
        }
    }

    #[test]
    fn distinct_arrays_map_to_distinct_slots_usually() {
        // Kirsch-Mitzenmacher derivation: the two arrays' slots for one
        // key agree only ~1/w of the time.
        let sk = HkSketch::new(&cfg(64));
        let mut agree = 0;
        let n = 10_000u64;
        for v in 0..n {
            let p = sk.prepare(&v.to_le_bytes());
            if sk.slot(0, &p) == sk.slot(1, &p) {
                agree += 1;
            }
        }
        let frac = agree as f64 / n as f64;
        assert!(frac < 0.05, "arrays too correlated: {frac}");
    }

    #[test]
    fn fingerprint_not_determined_by_slot() {
        // Flows in the same bucket must still have diverse fingerprints.
        let sk = HkSketch::new(&cfg(4));
        let mut fps_in_slot0 = std::collections::HashSet::new();
        for v in 0..2000u64 {
            let p = sk.prepare(&v.to_le_bytes());
            if sk.slot(0, &p) == 0 {
                fps_in_slot0.insert(p.fp);
            }
        }
        assert!(fps_in_slot0.len() > 100, "fingerprints collapse with slot");
    }

    #[test]
    fn no_overestimation_under_contention() {
        // Theorem 2: with no fingerprint collision, a counter never
        // exceeds the true size of the held flow. Stream two flows into
        // a 1-bucket sketch: collisions are forced.
        let cfg = HkConfig::builder().arrays(1).width(1).seed(3).build();
        let mut sk = HkSketch::new(&cfg);
        let (ka, kb) = (1u64.to_le_bytes(), 2u64.to_le_bytes());
        assert_ne!(sk.fingerprint(&ka), sk.fingerprint(&kb));
        let (mut na, mut nb) = (0u64, 0u64);
        let mut rng = XorShift64::new(99);
        for _ in 0..10_000 {
            if rng.bernoulli(0.7) {
                sk.insert_basic(&ka);
                na += 1;
            } else {
                sk.insert_basic(&kb);
                nb += 1;
            }
            assert!(sk.query(&ka) <= na);
            assert!(sk.query(&kb) <= nb);
        }
    }

    #[test]
    fn counter_never_zero_while_held() {
        // "As long as flows are mapped to a bucket, its counter field
        // will never be 0": after any insert, a previously non-empty
        // bucket stays non-empty.
        let cfg = HkConfig::builder().arrays(1).width(1).seed(5).build();
        let mut sk = HkSketch::new(&cfg);
        sk.insert_basic(&1u64.to_le_bytes());
        for v in 2..500u64 {
            sk.insert_basic(&v.to_le_bytes());
            assert!(sk.bucket(0, 0).count >= 1);
        }
    }

    #[test]
    fn mouse_decays_away_elephant_survives() {
        let cfg = HkConfig::builder().arrays(1).width(1).seed(11).build();
        let mut sk = HkSketch::new(&cfg);
        let el = 77u64.to_le_bytes();
        let mut rng = XorShift64::new(1);
        for i in 0..20_000u64 {
            if rng.bernoulli(0.5) {
                sk.insert_basic(&el);
            } else {
                sk.insert_basic(&(1000 + i).to_le_bytes());
            }
        }
        let est = sk.query(&el);
        assert!(est > 5_000, "elephant estimate {est} too low");
    }

    #[test]
    fn query_unknown_flow_is_zero() {
        let sk = HkSketch::new(&cfg(8));
        assert_eq!(sk.query(&9u64.to_le_bytes()), 0);
    }

    #[test]
    fn counter_saturates_at_bit_width() {
        let cfg = HkConfig::builder()
            .arrays(1)
            .width(4)
            .counter_bits(4)
            .seed(2)
            .build();
        let mut sk = HkSketch::new(&cfg);
        let key = 3u64.to_le_bytes();
        for _ in 0..100 {
            sk.insert_basic(&key);
        }
        assert_eq!(sk.query(&key), 15, "4-bit counter must saturate at 15");
    }

    #[test]
    fn expansion_adds_array_after_threshold() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(4)
            .expansion(ExpansionPolicy {
                large_counter: 10,
                blocked_threshold: 5,
                max_arrays: 3,
            })
            .build();
        let mut sk = HkSketch::new(&cfg);
        assert_eq!(sk.arrays(), 2);
        let mut added = false;
        for _ in 0..10 {
            added |= sk.note_blocked();
        }
        assert!(added);
        assert_eq!(sk.arrays(), 3);
        assert_eq!(sk.expansions(), 1);
        // Capped at max_arrays.
        for _ in 0..100 {
            sk.note_blocked();
        }
        assert_eq!(sk.arrays(), 3);
    }

    #[test]
    fn expansion_disabled_never_expands() {
        let mut sk = HkSketch::new(&cfg(4));
        for _ in 0..10_000 {
            assert!(!sk.note_blocked());
        }
        assert_eq!(sk.arrays(), 2);
        assert!(!sk.is_large_for_expansion(1 << 30));
    }

    #[test]
    fn memory_accounting_16_16() {
        // 2 arrays x 100 buckets x 4 bytes = 800 bytes.
        let cfg = HkConfig::builder().arrays(2).width(100).build();
        let sk = HkSketch::new(&cfg);
        assert_eq!(sk.memory_bytes(), 800);
    }

    #[test]
    fn reset_clears_state() {
        let mut sk = HkSketch::new(&cfg(16));
        for v in 0..100u64 {
            sk.insert_basic(&v.to_le_bytes());
        }
        assert!(sk.occupancy() > 0);
        sk.reset();
        assert_eq!(sk.occupancy(), 0);
        assert_eq!(sk.blocked_count(), 0);
        assert_eq!(sk.query(&1u64.to_le_bytes()), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut sk = HkSketch::new(&cfg(32));
            let mut rng = XorShift64::new(4);
            for _ in 0..5000 {
                let v = rng.next_u64_raw() % 100;
                sk.insert_basic(&v.to_le_bytes());
            }
            sk.query(&1u64.to_le_bytes())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn slotted_insert_matches_prepared_insert() {
        // The cached-slot path must consume the same buckets and RNG as
        // the on-demand path.
        let mut a = HkSketch::new(&cfg(32));
        let mut b = HkSketch::new(&cfg(32));
        let mut batch = PreparedBatch::new();
        for v in 0..5_000u64 {
            let key = (v % 80).to_le_bytes();
            let p = a.prepare(&key);
            b.prepare_batch(&[v % 80], &mut batch);
            let e = batch.entry(0);
            a.insert_basic_prepared(&p);
            b.insert_basic_keyed(&e);
            assert_eq!(a.query_prepared(&p), b.query_keyed(&batch.entry(0)));
        }
        for j in 0..a.arrays() {
            for i in 0..a.width() {
                assert_eq!(a.bucket(j, i), b.bucket(j, i));
            }
        }
    }

    #[test]
    fn recycle_restores_as_constructed_state() {
        // Drive a sketch, recycle it, then drive it and a genuinely
        // fresh sketch with identical traffic: every bucket must match.
        // A plain `reset` would diverge (decay RNG not rewound).
        let c = cfg(32);
        let mut recycled = HkSketch::new(&c);
        let mut rng = XorShift64::new(17);
        for _ in 0..20_000 {
            let v = rng.next_u64_raw() % 60;
            recycled.insert_basic(&v.to_le_bytes());
        }
        recycled.recycle();
        assert_eq!(recycled.occupancy(), 0);
        assert_eq!(*recycled.stats(), InsertStats::default());

        let mut fresh = HkSketch::new(&c);
        let mut rng = XorShift64::new(17);
        for _ in 0..20_000 {
            let v = rng.next_u64_raw() % 60;
            let key = v.to_le_bytes();
            assert_eq!(recycled.insert_basic(&key), fresh.insert_basic(&key));
        }
        for j in 0..fresh.arrays() {
            for i in 0..fresh.width() {
                assert_eq!(recycled.bucket(j, i), fresh.bucket(j, i));
            }
        }
    }

    #[test]
    fn recycle_drops_expansion_rows() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(4)
            .expansion(ExpansionPolicy {
                large_counter: 10,
                blocked_threshold: 5,
                max_arrays: 3,
            })
            .build();
        let mut sk = HkSketch::new(&cfg);
        for _ in 0..10 {
            sk.note_blocked();
        }
        assert_eq!(sk.arrays(), 3);
        sk.recycle();
        assert_eq!(sk.arrays(), 2, "recycle restores the configured rows");
        assert_eq!(sk.expansions(), 0);
        assert_eq!(sk.blocked_count(), 0);
    }

    #[test]
    fn layout_report_geometry() {
        let sk = HkSketch::new(&cfg(128));
        let r = sk.layout_report();
        assert_eq!(r.rows, 2);
        assert_eq!(r.width, 128);
        assert_eq!(r.bucket_bytes, 8);
        assert_eq!(r.buckets_per_line, 8);
        assert_eq!(r.lines_per_packet, 2);
        assert_eq!(r.runtime_bytes, 2 * 128 * 8);
        assert_eq!(r.accounted_bytes, 2 * 128 * 4);
        assert!(r.aligned);
        assert_eq!(r.fp_field_bits + r.count_field_bits, 64);
        let text = r.to_string();
        assert!(text.contains("2 x 128"), "report text: {text}");
    }
}
