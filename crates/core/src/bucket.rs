//! Packed buckets and the flat bucket matrix.
//!
//! Each HeavyKeeper bucket holds a fingerprint field `FP` and a counter
//! field `C` (Figure 1). The paper evaluates with *packed* 16+16-bit
//! buckets so that a whole row of candidate buckets fits in a couple of
//! cache lines; the runtime layout here matches that spirit: every
//! bucket is **one `u64` word** — counter in the low bits, fingerprint
//! in the high bits — so a bucket update is a single load and a single
//! store, and eight buckets share each 64-byte cache line (the old
//! padded `{fp: u32, count: u64}` struct spent 16 bytes per bucket and
//! fit only four).
//!
//! * [`PackedLayout`] is the bit split. It is derived from the
//!   *configured* field widths and defaults to 32/32 (16-bit configured
//!   fields leave headroom; the split only widens the counter side when
//!   the configuration demands more than 32 counter bits). Every
//!   configured value is representable: the counter field always holds
//!   at least `counter_bits`, the fingerprint field at least
//!   `fingerprint_bits` — debug-asserted on every pack.
//! * [`BucketMatrix`] is the storage: one contiguous, 64-byte-aligned,
//!   row-major `d × w` allocation. A bucket access is one base-pointer
//!   offset (`row * width + slot`) with no per-array indirection;
//!   `reset` is a `fill(0)` and occupancy a slice scan.
//! * [`Bucket`] remains the *value* type consumers read and write;
//!   packing and unpacking happen at the matrix boundary.
//!
//! Index computation lives in [`crate::sketch::HkSketch`] (one hash per
//! packet, Kirsch–Mitzenmacher derivation); the matrix is pure bucket
//! storage. The *accounted* memory (what experiments charge the
//! algorithm for) still uses the configured bit widths — exactly how a
//! C implementation with packed 16+16-bit buckets would be charged.

/// One `(fingerprint, counter)` bucket, as a value.
///
/// `fp == 0` encodes an empty bucket; real fingerprints are remapped away
/// from 0 by the sketch's fingerprint derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bucket {
    /// Fingerprint field (0 = empty).
    pub fp: u32,
    /// Counter field.
    pub count: u64,
}

impl Bucket {
    /// True if no flow is held here (counter 0).
    ///
    /// The paper's invariant: "as long as flows are mapped to a bucket,
    /// its counter field will never be 0", so `count == 0 ⇔ empty`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The single-word bucket bit split: counter in the low `count_bits`,
/// fingerprint in the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLayout {
    count_bits: u32,
    count_mask: u64,
}

impl PackedLayout {
    /// Derives the packing for the configured field widths.
    ///
    /// The counter field gets `max(32, counter_bits)` bits (so the
    /// default 16+16 configuration packs as 32/32), shrunk only as far
    /// as needed to leave the fingerprint its configured width.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ fingerprint_bits ≤ 32`, `counter_bits ≥ 1`,
    /// and `fingerprint_bits + counter_bits ≤ 64` (the configured
    /// fields must fit one word).
    pub fn new(fingerprint_bits: u32, counter_bits: u32) -> Self {
        assert!(
            (1..=32).contains(&fingerprint_bits),
            "fingerprint width must be in 1..=32"
        );
        assert!(counter_bits >= 1, "counter width must be positive");
        assert!(
            fingerprint_bits + counter_bits <= 64,
            "fingerprint + counter bits exceed one packed word"
        );
        let count_bits = counter_bits.max(32).min(64 - fingerprint_bits);
        Self {
            count_bits,
            count_mask: (1u64 << count_bits) - 1,
        }
    }

    /// Bits of the runtime counter field (≥ the configured width).
    #[inline]
    pub fn count_bits(&self) -> u32 {
        self.count_bits
    }

    /// Bits of the runtime fingerprint field (≥ the configured width).
    #[inline]
    pub fn fp_bits(&self) -> u32 {
        64 - self.count_bits
    }

    /// Largest counter value the runtime field can hold.
    #[inline]
    pub fn count_max(&self) -> u64 {
        self.count_mask
    }

    /// Packs a bucket into one word.
    #[inline]
    pub fn pack(&self, b: Bucket) -> u64 {
        debug_assert!(b.count <= self.count_mask, "counter overflows its field");
        debug_assert!(
            self.fp_bits() == 32 || (b.fp as u64) < (1u64 << self.fp_bits()),
            "fingerprint overflows its field"
        );
        ((b.fp as u64) << self.count_bits) | b.count
    }

    /// Unpacks a word back into a bucket.
    #[inline]
    pub fn unpack(&self, word: u64) -> Bucket {
        Bucket {
            fp: (word >> self.count_bits) as u32,
            count: word & self.count_mask,
        }
    }

    /// The counter field of a packed word.
    #[inline]
    pub fn count(&self, word: u64) -> u64 {
        word & self.count_mask
    }

    /// The fingerprint field of a packed word.
    #[inline]
    pub fn fp(&self, word: u64) -> u32 {
        (word >> self.count_bits) as u32
    }

    /// Mask selecting the fingerprint field in place (the complement of
    /// the counter mask).
    ///
    /// Hot paths compare `word & fp_mask() == packed_fp(fp)` instead of
    /// extracting the fingerprint: the shift happens once per packet in
    /// [`PackedLayout::packed_fp`], never per bucket.
    #[inline]
    pub fn fp_mask(&self) -> u64 {
        !self.count_mask
    }

    /// The fingerprint pre-shifted into field position.
    #[inline]
    pub fn packed_fp(&self, fp: u32) -> u64 {
        debug_assert!(
            self.fp_bits() == 32 || (fp as u64) < (1u64 << self.fp_bits()),
            "fingerprint overflows its field"
        );
        (fp as u64) << self.count_bits
    }

    /// True iff `word`'s fingerprint field equals the pre-shifted
    /// `packed_fp`: the xor clears the fingerprint bits exactly when
    /// they match, leaving only counter bits — one xor and one compare,
    /// no per-bucket shift or second mask.
    #[inline]
    pub fn fp_matches(&self, word: u64, packed_fp: u64) -> bool {
        (word ^ packed_fp) <= self.count_mask
    }
}

/// Words of padding allocated so the live region can start on a
/// 64-byte boundary (7 spare `u64`s cover every phase of an 8-byte
/// aligned allocation).
const ALIGN_PAD: usize = 7;

/// A contiguous, 64-byte-aligned, row-major `rows × width` matrix of
/// packed buckets.
///
/// The alignment is achieved without `unsafe`: the backing `Vec<u64>`
/// is over-allocated by [`ALIGN_PAD`] words and the live region starts
/// at the first 64-byte boundary inside it, so every row of 8 buckets
/// begins on a cache line whenever `width` is a multiple of 8.
#[derive(Debug)]
pub struct BucketMatrix {
    words: Vec<u64>,
    /// First live word (alignment offset into `words`).
    start: usize,
    rows: usize,
    width: usize,
    layout: PackedLayout,
}

impl BucketMatrix {
    /// Creates an all-empty `rows × width` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `width == 0`.
    pub fn new(rows: usize, width: usize, layout: PackedLayout) -> Self {
        assert!(rows > 0, "matrix needs at least one row");
        assert!(width > 0, "array width must be positive");
        // Zero by *storing* (resize), not via `vec![0; n]`'s calloc
        // fast path: calloc hands back lazily mapped zero pages whose
        // faults would then land inside the ingest hot loop. Writing
        // the zeros here populates every page at construction, so
        // steady-state inserts never page-fault — the behavior a
        // line-rate deployment wants, and what the padded layout did
        // implicitly (its bucket struct had no calloc specialization).
        #[allow(clippy::slow_vector_initialization)]
        let words = {
            let mut words = Vec::with_capacity(rows * width + ALIGN_PAD);
            words.resize(rows * width + ALIGN_PAD, 0u64);
            words
        };
        let off = words.as_ptr().align_offset(64);
        // `align_offset` counts in `u64` elements; for an 8-byte aligned
        // allocation it is 0..=7, but the API reserves the right to give
        // up (usize::MAX) — fall back to an unaligned start then.
        let start = if off <= ALIGN_PAD { off } else { 0 };
        Self {
            words,
            start,
            rows,
            width,
            layout,
        }
    }

    /// Number of rows (the sketch's `d`, grows under expansion).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row (the sketch's `w`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The bit split buckets are packed with.
    #[inline]
    pub fn layout(&self) -> PackedLayout {
        self.layout
    }

    /// The live words, all rows contiguous.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.words[self.start..self.start + self.rows * self.width]
    }

    /// The live words, mutable — hot paths hoist this once so the
    /// slice pointer/length live in registers across the walk instead
    /// of being re-loaded from the struct after every store.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.words[self.start..self.start + self.rows * self.width]
    }

    /// One row's packed words (for merge walks and serialization).
    #[inline]
    pub fn row(&self, j: usize) -> &[u64] {
        debug_assert!(j < self.rows);
        let base = self.start + j * self.width;
        &self.words[base..base + self.width]
    }

    #[inline]
    fn index(&self, j: usize, i: usize) -> usize {
        debug_assert!(j < self.rows, "row {j} out of {}", self.rows);
        debug_assert!(i < self.width, "slot {i} out of {}", self.width);
        self.start + j * self.width + i
    }

    /// The raw packed word of bucket `(j, i)`.
    #[inline]
    pub fn word(&self, j: usize, i: usize) -> u64 {
        self.words[self.index(j, i)]
    }

    /// Overwrites the raw packed word of bucket `(j, i)`.
    #[inline]
    pub fn set_word(&mut self, j: usize, i: usize, word: u64) {
        let idx = self.index(j, i);
        self.words[idx] = word;
    }

    /// Reads bucket `(j, i)` as a value.
    #[inline]
    pub fn get(&self, j: usize, i: usize) -> Bucket {
        self.layout.unpack(self.word(j, i))
    }

    /// Writes bucket `(j, i)` from a value.
    #[inline]
    pub fn set(&mut self, j: usize, i: usize, b: Bucket) {
        let word = self.layout.pack(b);
        self.set_word(j, i, word);
    }

    /// Clears every bucket: one `fill(0)` over the contiguous words
    /// (compiles to `memset`), not a per-bucket walk.
    pub fn reset(&mut self) {
        self.data_mut().fill(0);
    }

    /// Number of non-empty buckets, as a scan of the flat words.
    pub fn occupancy(&self) -> usize {
        let mask = self.layout.count_mask;
        self.data().iter().filter(|&&w| w & mask != 0).count()
    }

    /// Appends an all-empty row (Section III-F expansion). The matrix
    /// is re-allocated so the enlarged region is again aligned and
    /// contiguous; expansion is rare, so the copy is off any hot path.
    pub fn push_row(&mut self) {
        let mut grown = Self::new(self.rows + 1, self.width, self.layout);
        let live = self.rows * self.width;
        grown.data_mut()[..live].copy_from_slice(self.data());
        *self = grown;
    }

    /// Scan-and-compares row `j` against `base` (the same row of a
    /// retained snapshot; `None` means an all-empty baseline, e.g. a row
    /// added by Section III-F expansion since the snapshot), filling
    /// `bitmap` with one bit per bucket — set iff the packed words
    /// differ — and returning the changed-bucket count. `bitmap` is
    /// resized to `width.div_ceil(64)` words; trailing bits past
    /// `width` stay zero. Plain u64 compares over the packed row view:
    /// this is the dirty-delta exporter's whole read path, and it never
    /// touches ingest.
    pub fn diff_row_bitmap(&self, j: usize, base: Option<&[u64]>, bitmap: &mut Vec<u64>) -> usize {
        if let Some(base) = base {
            debug_assert_eq!(base.len(), self.width, "baseline row width");
        }
        bitmap.clear();
        bitmap.resize(self.width.div_ceil(64), 0);
        let row = self.row(j);
        let mut changed = 0usize;
        for (i, &new) in row.iter().enumerate() {
            let old = base.map_or(0, |b| b[i]);
            if old != new {
                bitmap[i / 64] |= 1u64 << (i % 64);
                changed += 1;
            }
        }
        changed
    }

    /// True if the live region actually starts on a 64-byte boundary
    /// (diagnostics; `false` only if `align_offset` gave up).
    pub fn is_aligned(&self) -> bool {
        (self.words[self.start..].as_ptr() as usize).is_multiple_of(64)
    }

    /// Bytes of the live runtime allocation (8 per bucket).
    pub fn runtime_bytes(&self) -> usize {
        self.rows * self.width * std::mem::size_of::<u64>()
    }
}

impl Clone for BucketMatrix {
    /// Clones by rebuilding: the fresh allocation computes its own
    /// alignment offset instead of inheriting one that only made sense
    /// for the original base address.
    fn clone(&self) -> Self {
        let mut m = Self::new(self.rows, self.width, self.layout);
        m.data_mut().copy_from_slice(self.data());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_matrix_is_empty() {
        let m = BucketMatrix::new(2, 16, PackedLayout::new(16, 16));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.width(), 16);
        assert_eq!(m.occupancy(), 0);
        assert!(m.data().iter().all(|&w| w == 0));
    }

    #[test]
    fn bucket_roundtrip_via_matrix() {
        let mut m = BucketMatrix::new(2, 4, PackedLayout::new(16, 16));
        m.set(1, 2, Bucket { fp: 9, count: 5 });
        assert_eq!(m.get(1, 2), Bucket { fp: 9, count: 5 });
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn default_split_is_32_32() {
        let l = PackedLayout::new(16, 16);
        assert_eq!(l.count_bits(), 32);
        assert_eq!(l.fp_bits(), 32);
        assert_eq!(l.count_max(), u32::MAX as u64);
    }

    #[test]
    fn wide_counter_widens_the_field() {
        let l = PackedLayout::new(8, 40);
        assert_eq!(l.count_bits(), 40);
        assert_eq!(l.fp_bits(), 24);
        let b = Bucket {
            fp: 0xFF_FFFF,
            count: (1 << 40) - 1,
        };
        assert_eq!(l.unpack(l.pack(b)), b);
    }

    #[test]
    fn empty_means_zero_count() {
        let b = Bucket { fp: 7, count: 0 };
        assert!(b.is_empty(), "a zero counter is empty even with stale fp");
        let b = Bucket { fp: 7, count: 1 };
        assert!(!b.is_empty());
    }

    #[test]
    fn occupancy_keys_on_the_counter_field_only() {
        let mut m = BucketMatrix::new(1, 4, PackedLayout::new(16, 16));
        // A stale fingerprint with a zero counter is still empty.
        m.set(0, 0, Bucket { fp: 7, count: 0 });
        assert_eq!(m.occupancy(), 0);
        assert!(m.get(0, 0).is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = BucketMatrix::new(3, 8, PackedLayout::new(16, 16));
        for j in 0..3 {
            for i in 0..8 {
                m.set(j, i, Bucket { fp: 1, count: 1 });
            }
        }
        assert_eq!(m.occupancy(), 24);
        m.reset();
        assert_eq!(m.occupancy(), 0);
        assert!(m.data().iter().all(|&w| w == 0));
    }

    #[test]
    fn matrix_is_cache_line_aligned() {
        for width in [8usize, 64, 1024] {
            let m = BucketMatrix::new(2, width, PackedLayout::new(16, 16));
            assert!(m.is_aligned(), "width {width} not aligned");
            assert_eq!(m.data().as_ptr() as usize % 64, 0);
        }
    }

    #[test]
    fn clone_preserves_contents_and_alignment() {
        let mut m = BucketMatrix::new(2, 64, PackedLayout::new(16, 16));
        m.set(1, 63, Bucket { fp: 3, count: 7 });
        let c = m.clone();
        assert_eq!(c.get(1, 63), Bucket { fp: 3, count: 7 });
        assert_eq!(c.data(), m.data());
        assert!(c.is_aligned());
    }

    #[test]
    fn push_row_keeps_contents_and_appends_empty() {
        let mut m = BucketMatrix::new(2, 4, PackedLayout::new(16, 16));
        m.set(0, 1, Bucket { fp: 5, count: 2 });
        m.set(1, 3, Bucket { fp: 6, count: 9 });
        m.push_row();
        assert_eq!(m.rows(), 3);
        assert!(m.is_aligned());
        assert_eq!(m.get(0, 1), Bucket { fp: 5, count: 2 });
        assert_eq!(m.get(1, 3), Bucket { fp: 6, count: 9 });
        assert!((0..4).all(|i| m.get(2, i).is_empty()));
    }

    #[test]
    fn row_views_cover_the_matrix() {
        let mut m = BucketMatrix::new(2, 4, PackedLayout::new(16, 16));
        m.set(1, 0, Bucket { fp: 2, count: 3 });
        assert_eq!(m.row(0).len(), 4);
        assert_eq!(m.row(1)[0], m.word(1, 0));
        let flat: Vec<u64> = m.row(0).iter().chain(m.row(1)).copied().collect();
        assert_eq!(flat, m.data());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        BucketMatrix::new(1, 0, PackedLayout::new(16, 16));
    }

    #[test]
    #[should_panic(expected = "exceed one packed word")]
    fn oversized_split_rejected() {
        PackedLayout::new(32, 33);
    }

    proptest! {
        /// Round-trip at every representable bit split: any in-range
        /// (fp, count) survives pack → unpack bit-exactly.
        #[test]
        fn pack_unpack_roundtrips_at_every_split(
            fp_bits in 1u32..=32,
            extra_count_bits in 0u32..=32,
            fp_seed in any::<u32>(),
            count_seed in any::<u64>(),
        ) {
            let count_bits = (64 - fp_bits).min(1 + extra_count_bits.min(62));
            let l = PackedLayout::new(fp_bits, count_bits);
            prop_assert!(l.count_bits() >= count_bits);
            prop_assert!(l.fp_bits() >= fp_bits);
            prop_assert_eq!(l.count_bits() + l.fp_bits(), 64);
            // Clamp the seeds into the *configured* ranges, like the
            // sketch's mask and saturation do.
            let fp = if fp_bits == 32 { fp_seed } else { fp_seed & ((1 << fp_bits) - 1) };
            let count_max = if count_bits == 64 { u64::MAX } else { (1u64 << count_bits) - 1 };
            let count = count_seed.min(count_max);
            let b = Bucket { fp, count };
            prop_assert_eq!(l.unpack(l.pack(b)), b);
            prop_assert_eq!(l.count(l.pack(b)), count);
            prop_assert_eq!(l.fp(l.pack(b)), fp);
        }

        /// The counter field saturates exactly at the configured
        /// `counter_max`: packing it is lossless, and one more would
        /// still fit the runtime field (the sketch saturates *before*
        /// the field limit, never at it).
        #[test]
        fn configured_counter_max_fits(fp_bits in 1u32..=32, count_bits in 1u32..=32) {
            prop_assume!(fp_bits + count_bits <= 64);
            let l = PackedLayout::new(fp_bits, count_bits);
            let counter_max = (1u64 << count_bits) - 1;
            prop_assert!(counter_max <= l.count_max());
            let b = Bucket { fp: 1, count: counter_max };
            prop_assert_eq!(l.unpack(l.pack(b)).count, counter_max);
        }

        /// fp = 0 with any counter, and counter = 0 with any fp, keep
        /// the empty-bucket invariant observable after packing.
        #[test]
        fn zero_fields_survive_packing(fp in any::<u32>(), count in any::<u64>()) {
            let l = PackedLayout::new(32, 32);
            let count = count & l.count_max();
            let empty_fp = Bucket { fp: 0, count };
            prop_assert_eq!(l.fp(l.pack(empty_fp)), 0);
            let empty_count = Bucket { fp, count: 0 };
            prop_assert!(l.unpack(l.pack(empty_count)).is_empty());
            // The all-zero word is the all-empty bucket — what `reset`'s
            // fill(0) relies on.
            prop_assert_eq!(l.unpack(0), Bucket::default());
        }
    }
}
