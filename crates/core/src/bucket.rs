//! Buckets and bucket arrays.
//!
//! Each HeavyKeeper bucket holds a fingerprint field `FP` and a counter
//! field `C` (Figure 1). The struct below stores both in native integers
//! for speed while the *accounted* memory (what experiments charge the
//! algorithm for) uses the configured bit widths — exactly how a C
//! implementation with packed 16+16-bit buckets would behave.
//!
//! Index computation lives in [`crate::sketch::HkSketch`] (one hash per
//! packet, Kirsch–Mitzenmacher derivation); an [`Array`] is pure bucket
//! storage.

/// One `(fingerprint, counter)` bucket.
///
/// `fp == 0` encodes an empty bucket; real fingerprints are remapped away
/// from 0 by the sketch's fingerprint derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bucket {
    /// Fingerprint field (0 = empty).
    pub fp: u32,
    /// Counter field.
    pub count: u64,
}

impl Bucket {
    /// True if no flow is held here (counter 0).
    ///
    /// The paper's invariant: "as long as flows are mapped to a bucket,
    /// its counter field will never be 0", so `count == 0 ⇔ empty`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One of HeavyKeeper's `d` arrays: `w` buckets.
#[derive(Debug, Clone)]
pub struct Array {
    buckets: Vec<Bucket>,
}

impl Array {
    /// Creates an array of `w` empty buckets.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "array width must be positive");
        Self {
            buckets: vec![Bucket::default(); w],
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn width(&self) -> usize {
        self.buckets.len()
    }

    /// Immutable access to bucket `i`.
    #[inline]
    pub fn bucket(&self, i: usize) -> &Bucket {
        &self.buckets[i]
    }

    /// Mutable access to bucket `i`.
    #[inline]
    pub fn bucket_mut(&mut self, i: usize) -> &mut Bucket {
        &mut self.buckets[i]
    }

    /// Iterates over all buckets.
    pub fn iter(&self) -> impl Iterator<Item = &Bucket> + '_ {
        self.buckets.iter()
    }

    /// Number of non-empty buckets (used by tests and diagnostics).
    pub fn occupancy(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_array_is_empty() {
        let a = Array::new(16);
        assert_eq!(a.width(), 16);
        assert_eq!(a.occupancy(), 0);
        assert!(a.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn bucket_mutation() {
        let mut a = Array::new(4);
        a.bucket_mut(2).fp = 9;
        a.bucket_mut(2).count = 5;
        assert_eq!(a.bucket(2).fp, 9);
        assert_eq!(a.bucket(2).count, 5);
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn empty_means_zero_count() {
        let b = Bucket { fp: 7, count: 0 };
        assert!(b.is_empty(), "a zero counter is empty even with stale fp");
        let b = Bucket { fp: 7, count: 1 };
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        Array::new(0);
    }
}
