//! The basic HeavyKeeper top-k finder (Section III-C).
//!
//! Per packet: insert into the sketch with the plain three-case rule
//! (decay in every mapped bucket), read back the estimate `n̂`, and update
//! the top-k store — `max`-update if the flow is already monitored,
//! otherwise admit it whenever `n̂` exceeds the current minimum.
//!
//! This version has neither Optimization I (fingerprint-collision
//! detection) nor Optimization II (selective increment); it exists as the
//! paper's baseline variant and as the subject of the appendix error
//! bound (Theorem 5), which experiment E21 validates.

use crate::config::HkConfig;
use crate::sketch::{HkSketch, PreparedKey};
use crate::store::TopKStore;
use hk_common::algorithm::{PreparedInsert, TopKAlgorithm};
use hk_common::key::FlowKey;
use hk_common::prepared::{HashSpec, KeySlots, PreparedBatch};

/// Basic HeavyKeeper + min-heap (Section III-C).
///
/// # Examples
///
/// ```
/// use heavykeeper::{BasicTopK, HkConfig};
/// use hk_common::TopKAlgorithm;
/// let cfg = HkConfig::builder().width(128).k(4).seed(2).build();
/// let mut hk = BasicTopK::<u64>::new(cfg);
/// for _ in 0..1000 { hk.insert(&1); }
/// for i in 0..100u64 { hk.insert(&(i + 10)); }
/// assert_eq!(hk.top_k()[0].0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BasicTopK<K: FlowKey> {
    sketch: HkSketch,
    store: TopKStore<K>,
    cfg: HkConfig,
    /// Reusable batch-prolog scratch of prepared keys + cached slots.
    scratch: PreparedBatch,
}

impl<K: FlowKey> BasicTopK<K> {
    /// Builds the algorithm from a configuration.
    pub fn new(cfg: HkConfig) -> Self {
        Self {
            sketch: HkSketch::new(&cfg),
            store: TopKStore::new(cfg.store, cfg.k),
            cfg,
            scratch: PreparedBatch::new(),
        }
    }

    /// Convenience constructor from a total memory budget (bytes): the
    /// top-k store gets its `k·(ID+4)` bytes, the sketch the remainder —
    /// the paper's Section VI-A accounting.
    pub fn with_memory(bytes: usize, k: usize, seed: u64) -> Self {
        let store_bytes = k * (K::ENCODED_LEN + 4);
        let sketch_bytes = bytes.saturating_sub(store_bytes).max(8);
        let cfg = HkConfig::builder()
            .memory_bytes(sketch_bytes)
            .k(k)
            .seed(seed)
            .build();
        Self::new(cfg)
    }

    /// Read access to the underlying sketch (diagnostics and tests).
    pub fn sketch(&self) -> &HkSketch {
        &self.sketch
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &HkConfig {
        &self.cfg
    }

    /// Clears all measurement state for a new epoch, keeping the
    /// configuration. Used by periodic network-wide collection (paper
    /// footnote 2), where each switch reports and resets per period.
    pub fn reset(&mut self) {
        self.sketch.reset();
        self.store = TopKStore::new(self.cfg.store, self.cfg.k);
    }

    /// The insert body, generic over how bucket slots are obtained (on
    /// demand for the scalar path, cached for the batched path).
    fn insert_keyed<S: KeySlots>(&mut self, key: &K, s: &S) {
        self.sketch.insert_basic_keyed(s);
        let estimate = self.sketch.query_keyed(s);
        if self.store.contains(key) {
            self.store.update_max(key, estimate);
        } else if estimate > self.store.nmin() {
            // nmin() is 0 while the store is not full, so early flows with
            // any positive estimate are admitted, as in the paper.
            if estimate > 0 {
                self.store.admit(*key, estimate);
            }
        }
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for BasicTopK<K> {
    fn insert(&mut self, key: &K) {
        let kb = key.key_bytes();
        let p = self.sketch.prepare(kb.as_slice());
        self.insert_prepared(key, &p);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        // Prolog: hash the whole batch into the scratch buffer, then walk
        // buckets in pre-touched blocks — the shared body lives in
        // `sketch::hk_insert_batch_body`.
        crate::sketch::hk_insert_batch_body!(self, keys);
    }

    fn query(&self, key: &K) -> u64 {
        let kb = key.key_bytes();
        self.sketch.query(kb.as_slice())
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        self.store.sorted_desc()
    }

    fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes() + self.store.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "HK-Basic"
    }
}

impl<K: FlowKey> PreparedInsert<K> for BasicTopK<K> {
    fn hash_spec(&self) -> HashSpec {
        self.sketch.hash_spec()
    }

    fn insert_prepared(&mut self, key: &K, p: &PreparedKey) {
        self.insert_keyed(key, p);
    }

    fn insert_prepared_batch(&mut self, keys: &[K], prepared: &[PreparedKey]) {
        // Hash-once handoff: the upstream stage already prepared every
        // key; rebuild the slot table locally and go straight to the
        // pre-touched block walk.
        crate::sketch::hk_insert_prepared_batch_body!(self, keys, prepared);
    }

    fn consumes_prepared(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HkConfig {
        HkConfig::builder().arrays(2).width(64).k(4).seed(3).build()
    }

    #[test]
    fn finds_single_elephant() {
        let mut hk = BasicTopK::<u64>::new(small_cfg());
        for _ in 0..500 {
            hk.insert(&42);
        }
        for i in 0..200u64 {
            hk.insert(&(100 + i));
        }
        let top = hk.top_k();
        assert_eq!(top[0].0, 42);
        assert!(top[0].1 <= 500, "no over-estimation");
        assert!(
            top[0].1 > 400,
            "estimate should be near 500, got {}",
            top[0].1
        );
    }

    #[test]
    fn top_k_sorted_and_bounded() {
        let mut hk = BasicTopK::<u64>::new(small_cfg());
        for f in 1..=8u64 {
            for _ in 0..(f * 50) {
                hk.insert(&f);
            }
        }
        let top = hk.top_k();
        assert!(top.len() <= 4);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn query_mouse_flow_is_small() {
        let mut hk = BasicTopK::<u64>::new(small_cfg());
        for _ in 0..1000 {
            hk.insert(&1);
        }
        hk.insert(&999);
        // Flow 999 was inserted once; its estimate is at most 1 (or 0 if
        // its buckets are contested).
        assert!(hk.query(&999) <= 1);
    }

    #[test]
    fn memory_accounting_includes_store() {
        let hk = BasicTopK::<u64>::new(small_cfg());
        // Sketch: 2x64x4 = 512; store: 4x(8+4) = 48.
        assert_eq!(hk.memory_bytes(), 512 + 48);
    }

    #[test]
    fn with_memory_budget_respected() {
        let hk = BasicTopK::<u64>::with_memory(10 * 1024, 100, 1);
        assert!(hk.memory_bytes() <= 10 * 1024);
        // Should use most of the budget, not a token amount.
        assert!(hk.memory_bytes() > 9 * 1024);
    }

    #[test]
    fn empty_top_k_initially() {
        let hk = BasicTopK::<u64>::new(small_cfg());
        assert!(hk.top_k().is_empty());
        assert_eq!(hk.query(&1), 0);
    }
}
