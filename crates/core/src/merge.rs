//! Merging HeavyKeeper sketches for network-wide measurement.
//!
//! The paper's deployment model (footnote 2) has "sketches in different
//! switches ... periodically sent to a collector for timely network
//! traffic analysis". The collector must combine the per-switch sketches
//! into one network-wide view. This module provides that combination:
//!
//! * [`HkSketch::merge_from`] — bucket-wise merge of two sketches built
//!   with the *same* seed, width, array count and field widths (so a flow
//!   maps to the same buckets with the same fingerprint in both).
//! * [`ParallelTopK::merge_from`] / [`MinimumTopK::merge_from`] — merge
//!   the sketch halves and fold the other instance's top-k entries into
//!   this one's store.
//!
//! ## Bucket merge rules
//!
//! The right way to combine two counts of the *same* flow depends on
//! what the two sketches observed ([`MergeMode`]):
//!
//! * [`MergeMode::Sum`] — the sketches saw **disjoint** packets (two
//!   halves of a stream, two non-overlapping vantage points): counts of
//!   the same flow add.
//! * [`MergeMode::Max`] — the sketches **overlap** (every switch on a
//!   flow's path counts all of its packets): summing would double-count;
//!   the maximum is the strongest valid lower bound.
//!
//! For each bucket position, with `(f₁,c₁)` here and `(f₂,c₂)` there:
//!
//! | case | `Sum` | `Max` |
//! |---|---|---|
//! | both empty | empty | empty |
//! | one empty | the non-empty one | the non-empty one |
//! | `f₁ = f₂` | `(f₁, min(c₁+c₂, max))` | `(f₁, max(c₁,c₂))` |
//! | `f₁ ≠ f₂` | winner = larger count, count = difference (tie → incumbent at 1) | keep the larger-count bucket as-is |
//!
//! The `Sum` conflict rule is the same "contest" the decay process plays
//! out one packet at a time: each loser packet *would have* decayed the
//! winner's counter with high probability had the streams been
//! interleaved into one sketch; subtracting is the deterministic limit
//! of that contest. Under `Max`, the loser's observation is simply
//! weaker evidence about the same traffic, so the winner keeps its full
//! count. Both rules preserve no-over-estimation (Theorem 2): every
//! resulting count is bounded by an input count that was itself a lower
//! bound (for `Sum`, by the sum of per-input lower bounds on disjoint
//! packet sets).
//!
//! ## What merging cannot do
//!
//! Merging is *lossy* in the conflict case, exactly like streaming both
//! inputs into one half-size sketch would be. It is associative in
//! distribution but not bit-exact under reordering (the tie rule breaks
//! symmetry); the tests pin down the properties that do hold.

use crate::minimum::MinimumTopK;
use crate::parallel::ParallelTopK;
use crate::sketch::HkSketch;
use hk_common::key::FlowKey;

/// How counts of the same flow combine across two sketches (see the
/// module docs for when each applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeMode {
    /// The sketches observed disjoint packets: counts add.
    #[default]
    Sum,
    /// The sketches observed overlapping traffic: take the maximum.
    Max,
}

/// Why two sketches cannot be merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// Different hash seeds: flows map to unrelated buckets/fingerprints.
    SeedMismatch,
    /// Different array widths.
    WidthMismatch,
    /// Different number of arrays (e.g. one side expanded, Section III-F).
    ArrayCountMismatch,
    /// Different fingerprint widths: fingerprints are not comparable.
    FingerprintMismatch,
    /// Different counter widths: saturation points disagree.
    CounterWidthMismatch,
    /// A sharded engine had no live shard left to fold (every worker
    /// died and none was recovered): there is nothing to merge.
    NoLiveShards,
    /// Two sliding windows disagree on window span, rotation count, or
    /// live epoch count: their epoch rings cannot be zipped pairwise.
    WindowMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            Self::SeedMismatch => "hash seeds differ",
            Self::WidthMismatch => "array widths differ",
            Self::ArrayCountMismatch => "array counts differ",
            Self::FingerprintMismatch => "fingerprint widths differ",
            Self::CounterWidthMismatch => "counter widths differ",
            Self::NoLiveShards => return write!(f, "no live shard to merge (all workers died)"),
            Self::WindowMismatch => "window spans or rotation phases differ",
        };
        write!(f, "sketches are not merge-compatible: {what}")
    }
}

impl std::error::Error for MergeError {}

/// Checks that `a` and `b` agree on every parameter that affects bucket
/// placement, fingerprints, or counter saturation.
pub fn check_compatible(a: &HkSketch, b: &HkSketch) -> Result<(), MergeError> {
    if a.seed() != b.seed() {
        return Err(MergeError::SeedMismatch);
    }
    if a.width() != b.width() {
        return Err(MergeError::WidthMismatch);
    }
    if a.arrays() != b.arrays() {
        return Err(MergeError::ArrayCountMismatch);
    }
    if a.fingerprint_bits() != b.fingerprint_bits() {
        return Err(MergeError::FingerprintMismatch);
    }
    if a.counter_max() != b.counter_max() {
        return Err(MergeError::CounterWidthMismatch);
    }
    Ok(())
}

impl HkSketch {
    /// Merges `other` into `self` with [`MergeMode::Sum`] semantics
    /// (disjoint observations). See [`HkSketch::merge_from_with`].
    pub fn merge_from(&mut self, other: &HkSketch) -> Result<(), MergeError> {
        self.merge_from_with(other, MergeMode::Sum)
    }

    /// Merges `other` into `self`, bucket by bucket, under the given
    /// mode (see the module docs for the rules). Returns an error and
    /// leaves `self` untouched when the two sketches are not compatible.
    pub fn merge_from_with(&mut self, other: &HkSketch, mode: MergeMode) -> Result<(), MergeError> {
        check_compatible(self, other)?;
        let max = self.counter_max();
        for j in 0..self.arrays() {
            // Walk the other side's packed row view; each merged bucket
            // is one read-compute-write on our matrix.
            let layout = other.matrix().layout();
            let row = other.matrix().row(j);
            for (i, &word) in row.iter().enumerate() {
                let theirs = layout.unpack(word);
                if theirs.is_empty() {
                    continue;
                }
                let mut ours = self.bucket(j, i);
                if ours.is_empty() {
                    ours = theirs;
                } else if ours.fp == theirs.fp {
                    ours.count = match mode {
                        MergeMode::Sum => (ours.count + theirs.count).min(max),
                        MergeMode::Max => ours.count.max(theirs.count),
                    };
                } else {
                    match mode {
                        MergeMode::Sum => {
                            if theirs.count > ours.count {
                                ours.fp = theirs.fp;
                                ours.count = theirs.count - ours.count;
                            } else if theirs.count < ours.count {
                                ours.count -= theirs.count;
                            } else {
                                // Tie: keep our fingerprint, shrink to the
                                // floor the contest would end at. Counters
                                // stay non-zero so the "held bucket is
                                // never empty" invariant survives.
                                ours.count = 1;
                            }
                        }
                        MergeMode::Max => {
                            if theirs.count > ours.count {
                                ours = theirs;
                            }
                        }
                    }
                }
                self.set_bucket(j, i, ours);
            }
        }
        Ok(())
    }
}

/// Folds `reported` (another instance's top-k, any order) into a top-k
/// algorithm by re-estimating each flow against the *merged* sketch and
/// offering it to the store.
///
/// Admission here is collector-side bookkeeping, not the per-packet
/// Algorithm 1 path, so Optimization I's `n̂ = n_min + 1` gate does not
/// apply: estimates arrive in arbitrary (not +1-increment) steps.
fn fold_reported<K, Q, A>(reported: Vec<(K, u64)>, query: Q, admit: A)
where
    K: FlowKey,
    Q: Fn(&K) -> u64,
    A: FnMut(K, u64),
{
    let mut admit = admit;
    for (key, reported_est) in reported {
        // The merged sketch may know the flow better than the report
        // (fingerprint survived the merge) or have lost it (conflict
        // eviction); trust whichever evidence is stronger.
        let est = query(&key).max(reported_est);
        if est > 0 {
            admit(key, est);
        }
    }
}

impl<K: FlowKey> ParallelTopK<K> {
    /// Merges another instance (same configuration) into this one with
    /// [`MergeMode::Sum`] semantics: sketches bucket-wise, then the
    /// other store's entries.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.merge_from_with(other, MergeMode::Sum)
    }

    /// [`ParallelTopK::merge_from`] under an explicit [`MergeMode`].
    pub fn merge_from_with(&mut self, other: &Self, mode: MergeMode) -> Result<(), MergeError> {
        self.sketch_mut().merge_from_with(other.sketch(), mode)?;
        let snapshot = {
            use hk_common::algorithm::TopKAlgorithm;
            other.top_k()
        };
        let sketch = self.sketch().clone();
        fold_reported(
            snapshot,
            |k: &K| sketch.query(k.key_bytes().as_slice()),
            |k, est| self.offer(k, est),
        );
        Ok(())
    }
}

impl<K: FlowKey> MinimumTopK<K> {
    /// Merges another instance (same configuration) into this one with
    /// [`MergeMode::Sum`] semantics: sketches bucket-wise, then the
    /// other store's entries.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.merge_from_with(other, MergeMode::Sum)
    }

    /// [`MinimumTopK::merge_from`] under an explicit [`MergeMode`].
    pub fn merge_from_with(&mut self, other: &Self, mode: MergeMode) -> Result<(), MergeError> {
        self.sketch_mut().merge_from_with(other.sketch(), mode)?;
        let snapshot = {
            use hk_common::algorithm::TopKAlgorithm;
            other.top_k()
        };
        let sketch = self.sketch().clone();
        fold_reported(
            snapshot,
            |k: &K| sketch.query(k.key_bytes().as_slice()),
            |k, est| self.offer(k, est),
        );
        Ok(())
    }
}

// The reshard fold/retain capability, for every checkpointable
// algorithm the sharded engine can respawn: fold = the Sum merge above
// (donor shards observed disjoint sub-streams), retain = the store
// repartition under the new lane map.

impl<K: FlowKey> hk_common::ShardReshard<K> for ParallelTopK<K> {
    fn fold_donor(&mut self, donor: &Self) -> Result<(), String> {
        self.merge_from(donor).map_err(|e| e.to_string())
    }

    fn retain_flows(&mut self, keep: &mut dyn FnMut(&K) -> bool) {
        self.retain_monitored(keep);
    }
}

impl<K: FlowKey> hk_common::ShardReshard<K> for crate::sliding::SlidingTopK<K> {
    fn fold_donor(&mut self, donor: &Self) -> Result<(), String> {
        self.merge_from(donor).map_err(|e| e.to_string())
    }

    fn retain_flows(&mut self, keep: &mut dyn FnMut(&K) -> bool) {
        self.retain_monitored(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HkConfig;
    use hk_common::algorithm::TopKAlgorithm;

    fn cfg(seed: u64) -> HkConfig {
        HkConfig::builder()
            .arrays(2)
            .width(256)
            .k(8)
            .seed(seed)
            .build()
    }

    #[test]
    fn incompatible_seeds_rejected() {
        let a = HkSketch::new(&cfg(1));
        let b = HkSketch::new(&cfg(2));
        assert_eq!(check_compatible(&a, &b), Err(MergeError::SeedMismatch));
    }

    #[test]
    fn incompatible_widths_rejected() {
        let a = HkSketch::new(&HkConfig::builder().width(64).seed(1).build());
        let mut b = HkSketch::new(&HkConfig::builder().width(128).seed(1).build());
        assert_eq!(b.merge_from(&a), Err(MergeError::WidthMismatch));
    }

    #[test]
    fn incompatible_array_counts_rejected() {
        let a = HkSketch::new(&HkConfig::builder().arrays(2).width(64).seed(1).build());
        let mut b = HkSketch::new(&HkConfig::builder().arrays(3).width(64).seed(1).build());
        assert_eq!(b.merge_from(&a), Err(MergeError::ArrayCountMismatch));
    }

    #[test]
    fn incompatible_fp_bits_rejected() {
        let a = HkSketch::new(
            &HkConfig::builder()
                .fingerprint_bits(16)
                .width(64)
                .seed(1)
                .build(),
        );
        let mut b = HkSketch::new(
            &HkConfig::builder()
                .fingerprint_bits(12)
                .width(64)
                .seed(1)
                .build(),
        );
        assert_eq!(b.merge_from(&a), Err(MergeError::FingerprintMismatch));
    }

    #[test]
    fn incompatible_counter_bits_rejected() {
        let a = HkSketch::new(
            &HkConfig::builder()
                .counter_bits(16)
                .width(64)
                .seed(1)
                .build(),
        );
        let mut b = HkSketch::new(
            &HkConfig::builder()
                .counter_bits(32)
                .width(64)
                .seed(1)
                .build(),
        );
        assert_eq!(b.merge_from(&a), Err(MergeError::CounterWidthMismatch));
    }

    #[test]
    fn merge_sums_matching_fingerprints() {
        let (mut a, mut b) = (HkSketch::new(&cfg(7)), HkSketch::new(&cfg(7)));
        let key = 42u64.to_le_bytes();
        for _ in 0..100 {
            a.insert_basic(&key);
        }
        for _ in 0..250 {
            b.insert_basic(&key);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.query(&key), 350, "uncontended counts add exactly");
    }

    #[test]
    fn merge_from_empty_is_identity() {
        let mut a = HkSketch::new(&cfg(3));
        for v in 0..500u64 {
            a.insert_basic(&v.to_le_bytes());
        }
        let before = a.clone();
        a.merge_from(&HkSketch::new(&cfg(3))).unwrap();
        for v in 0..500u64 {
            let key = v.to_le_bytes();
            assert_eq!(a.query(&key), before.query(&key));
        }
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = HkSketch::new(&cfg(3));
        let mut b = HkSketch::new(&cfg(3));
        for v in 0..500u64 {
            b.insert_basic(&v.to_le_bytes());
        }
        a.merge_from(&b).unwrap();
        for v in 0..500u64 {
            let key = v.to_le_bytes();
            assert_eq!(a.query(&key), b.query(&key));
        }
    }

    #[test]
    fn merge_preserves_no_overestimation() {
        // Stream disjoint halves of a skewed workload into two sketches,
        // merge, and verify no flow's estimate exceeds its true total.
        use std::collections::HashMap;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut sketches = [HkSketch::new(&cfg(11)), HkSketch::new(&cfg(11))];
        let mut state = 0x1234_5678u64;
        for n in 0..40_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(4) {
                state % 8
            } else {
                100 + state % 3000
            };
            sketches[(n % 2) as usize].insert_basic(&f.to_le_bytes());
            *truth.entry(f).or_insert(0) += 1;
        }
        let [mut a, b] = sketches;
        a.merge_from(&b).unwrap();
        for (&f, &n) in &truth {
            let est = a.query(&f.to_le_bytes());
            assert!(est <= n, "flow {f}: merged estimate {est} > truth {n}");
        }
    }

    #[test]
    fn merge_conflict_keeps_larger_flow() {
        // Force a conflict: a 1x1 sketch, two distinct flows, one big and
        // one small, in separate sketches.
        let tiny = HkConfig::builder().arrays(1).width(1).seed(5).build();
        let mut a = HkSketch::new(&tiny);
        let mut b = HkSketch::new(&tiny);
        let (big, small) = (1u64.to_le_bytes(), 2u64.to_le_bytes());
        for _ in 0..1000 {
            a.insert_basic(&big);
        }
        for _ in 0..100 {
            b.insert_basic(&small);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.query(&big), 900, "winner shrinks by the loser's count");
        assert_eq!(a.query(&small), 0, "loser is evicted");
    }

    #[test]
    fn merge_conflict_tie_leaves_held_bucket() {
        let tiny = HkConfig::builder().arrays(1).width(1).seed(5).build();
        let mut a = HkSketch::new(&tiny);
        let mut b = HkSketch::new(&tiny);
        for _ in 0..50 {
            a.insert_basic(&1u64.to_le_bytes());
            b.insert_basic(&2u64.to_le_bytes());
        }
        a.merge_from(&b).unwrap();
        let bucket = a.bucket(0, 0);
        assert!(!bucket.is_empty(), "tie must not empty a held bucket");
        assert_eq!(bucket.count, 1);
        assert_eq!(a.query(&1u64.to_le_bytes()), 1, "tie keeps the incumbent");
    }

    #[test]
    fn max_mode_takes_maximum_of_matching() {
        let (mut a, mut b) = (HkSketch::new(&cfg(7)), HkSketch::new(&cfg(7)));
        let key = 42u64.to_le_bytes();
        for _ in 0..100 {
            a.insert_basic(&key);
        }
        for _ in 0..250 {
            b.insert_basic(&key);
        }
        a.merge_from_with(&b, MergeMode::Max).unwrap();
        assert_eq!(a.query(&key), 250, "overlapping observations do not add");
    }

    #[test]
    fn max_mode_conflict_keeps_winner_intact() {
        let tiny = HkConfig::builder().arrays(1).width(1).seed(5).build();
        let mut a = HkSketch::new(&tiny);
        let mut b = HkSketch::new(&tiny);
        let (big, small) = (1u64.to_le_bytes(), 2u64.to_le_bytes());
        for _ in 0..1000 {
            a.insert_basic(&big);
        }
        for _ in 0..100 {
            b.insert_basic(&small);
        }
        a.merge_from_with(&b, MergeMode::Max).unwrap();
        assert_eq!(a.query(&big), 1000, "winner keeps its full count under Max");
        assert_eq!(a.query(&small), 0);
        // Symmetric direction: the bigger foreign bucket replaces ours.
        let mut b2 = HkSketch::new(&tiny);
        for _ in 0..100 {
            b2.insert_basic(&small);
        }
        let mut a2 = HkSketch::new(&tiny);
        for _ in 0..1000 {
            a2.insert_basic(&big);
        }
        b2.merge_from_with(&a2, MergeMode::Max).unwrap();
        assert_eq!(b2.query(&big), 1000);
    }

    #[test]
    fn max_mode_no_overestimation_overlapping_observers() {
        // Two sketches observing the SAME stream: Max-merging must not
        // exceed the single-stream truth for any flow.
        use std::collections::HashMap;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut a = HkSketch::new(&cfg(11));
        let mut b = HkSketch::new(&cfg(11));
        let mut state = 0xABCDu64;
        for _ in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(4) {
                state % 8
            } else {
                100 + state % 3000
            };
            a.insert_basic(&f.to_le_bytes());
            b.insert_basic(&f.to_le_bytes());
            *truth.entry(f).or_insert(0) += 1;
        }
        a.merge_from_with(&b, MergeMode::Max).unwrap();
        for (&f, &n) in &truth {
            let est = a.query(&f.to_le_bytes());
            assert!(est <= n, "flow {f}: Max-merged estimate {est} > truth {n}");
        }
    }

    #[test]
    fn merge_saturates_at_counter_max() {
        let cfg8 = HkConfig::builder()
            .arrays(1)
            .width(8)
            .counter_bits(8)
            .seed(2)
            .build();
        let mut a = HkSketch::new(&cfg8);
        let mut b = HkSketch::new(&cfg8);
        let key = 9u64.to_le_bytes();
        for _ in 0..200 {
            a.insert_basic(&key);
            b.insert_basic(&key);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.query(&key), 255, "8-bit counters saturate at 255");
    }

    #[test]
    fn parallel_topk_merge_finds_cross_switch_elephant() {
        // A flow that is medium at each of two switches but an elephant
        // in aggregate must surface after the merge.
        let mk = || ParallelTopK::<u64>::new(cfg(21));
        let (mut s1, mut s2) = (mk(), mk());
        // Flows 0..8: heavy at switch 1 only. Flow 100: half its traffic
        // at each switch.
        for _ in 0..400 {
            for f in 0..8u64 {
                s1.insert(&f);
            }
            s1.insert(&100);
            s2.insert(&100);
            s2.insert(&100);
        }
        s1.merge_from(&s2).unwrap();
        let top: Vec<u64> = s1.top_k().into_iter().map(|(k, _)| k).collect();
        assert!(top.contains(&100), "aggregate elephant missing: {top:?}");
        let est = s1.top_k().iter().find(|(k, _)| *k == 100).unwrap().1;
        assert!(
            est > 400,
            "merged estimate {est} should reflect both switches"
        );
        assert!(est <= 1200, "no over-estimation after merge");
    }

    #[test]
    fn minimum_topk_merge_works() {
        let mk = || MinimumTopK::<u64>::new(cfg(33));
        let (mut s1, mut s2) = (mk(), mk());
        for _ in 0..500 {
            s1.insert(&1);
            s2.insert(&2);
        }
        s1.merge_from(&s2).unwrap();
        let top: Vec<u64> = s1.top_k().into_iter().map(|(k, _)| k).collect();
        assert!(top.contains(&1) && top.contains(&2), "top = {top:?}");
    }

    #[test]
    fn merge_mismatched_config_leaves_self_untouched() {
        let mut a = ParallelTopK::<u64>::new(cfg(1));
        for _ in 0..100 {
            a.insert(&5);
        }
        let before = a.top_k();
        let b = ParallelTopK::<u64>::new(cfg(2));
        assert!(a.merge_from(&b).is_err());
        assert_eq!(a.top_k(), before);
    }
}
