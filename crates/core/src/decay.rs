//! Decay probability functions.
//!
//! The heart of HeavyKeeper is the *exponential-weakening decay*: a
//! non-matching packet decays a bucket's counter `C` with probability
//! `P_decay = b^{-C}` for a base `b` slightly above 1 (the paper uses
//! `b = 1.08`). The paper notes (Section III-B) that any monotonically
//! decreasing probability function works comparably and names `C^{-b}`
//! and a sigmoid as alternatives; all three are implemented here and an
//! ablation bench compares them.
//!
//! For speed, probabilities are precomputed into a table: past the point
//! where `P < 2⁻⁴⁰` the decay is treated as exactly zero, matching the
//! paper's observation that large counters effectively never decay
//! ("when the value is large enough (e.g., 50), the probability is close
//! to 0, so we can regard the probability as 0, so as to accelerate the
//! throughput").

/// A decay probability function `C ↦ P_decay(C)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayFn {
    /// `P = b^{-C}` — the paper's choice, `b > 1`, `b ≈ 1` (e.g. 1.08).
    Exponential {
        /// The base `b`.
        b: f64,
    },
    /// `P = C^{-b}` — the polynomial alternative named in Section III-B.
    Polynomial {
        /// The exponent `b`.
        b: f64,
    },
    /// `P = 1 / (1 + e^{λC})` — the sigmoid-shaped alternative. The
    /// paper writes it as `e^C / (1 + e^C)`, which *increases* with `C`;
    /// a decay probability must decrease, so we use its complement with
    /// a rate `λ` to control how fast it falls.
    Sigmoid {
        /// The rate `λ`.
        lambda: f64,
    },
}

impl DecayFn {
    /// The paper's default: exponential with `b = 1.08`.
    pub const PAPER_DEFAULT_BASE: f64 = 1.08;

    /// Creates an exponential decay with base `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `b > 1`.
    pub fn exponential(b: f64) -> Self {
        assert!(b > 1.0, "exponential base must exceed 1");
        Self::Exponential { b }
    }

    /// Creates a polynomial decay with exponent `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `b > 0`.
    pub fn polynomial(b: f64) -> Self {
        assert!(b > 0.0, "polynomial exponent must be positive");
        Self::Polynomial { b }
    }

    /// Creates a sigmoid decay with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0`.
    pub fn sigmoid(lambda: f64) -> Self {
        assert!(lambda > 0.0, "sigmoid rate must be positive");
        Self::Sigmoid { lambda }
    }

    /// The decay probability for counter value `c`.
    ///
    /// `c = 0` never occurs in decay decisions (Case 3 only rolls
    /// against non-empty buckets, whose counters are ≥ 1 by the paper's
    /// invariant); the function is still total so table construction
    /// can start at index 0. At `c = 0` every variant returns its
    /// clamped limit — 1.0 for `Exponential` (`b⁰`), 1.0 for
    /// `Polynomial` (`0^{-b}` clamped), 0.5 for `Sigmoid`.
    pub fn probability(&self, c: u64) -> f64 {
        let c = c as f64;
        let p = match self {
            Self::Exponential { b } => b.powf(-c),
            // `0^{-b} = ∞`; clamp the unreachable c = 0 point to 1.0
            // explicitly instead of letting the cast produce inf.
            Self::Polynomial { b } => {
                if c == 0.0 {
                    1.0
                } else {
                    c.powf(-b)
                }
            }
            Self::Sigmoid { lambda } => 1.0 / (1.0 + (lambda * c).exp()),
        };
        p.clamp(0.0, 1.0)
    }
}

impl Default for DecayFn {
    fn default() -> Self {
        Self::Exponential {
            b: Self::PAPER_DEFAULT_BASE,
        }
    }
}

/// Probability below which decay is treated as exactly zero (2⁻⁴⁰).
const NEGLIGIBLE: f64 = 1.0 / (1u64 << 40) as f64;

/// A precomputed decay-probability table.
///
/// Lookup is one bounds check and one array read; counters past the
/// table's cutoff have negligible probability and return 0.
#[derive(Debug, Clone)]
pub struct DecayTable {
    probs: Vec<f64>,
    /// `probability * 2⁶⁴` as a saturating integer, so the hot path can
    /// roll the coin as `rng.next_u64() < threshold` without floats.
    thresholds: Vec<u64>,
    decay: DecayFn,
}

impl DecayTable {
    /// Precomputes probabilities for the given function.
    ///
    /// The table extends until the probability falls below 2⁻⁴⁰ (capped
    /// at 2¹⁶ entries for slowly-decaying functions).
    pub fn new(decay: DecayFn) -> Self {
        let mut probs = Vec::new();
        let mut thresholds = Vec::new();
        for c in 0..=(1u64 << 16) {
            let p = decay.probability(c);
            if p < NEGLIGIBLE {
                break;
            }
            probs.push(p);
            thresholds.push(Self::threshold_for(p));
        }
        Self {
            probs,
            thresholds,
            decay,
        }
    }

    /// Maps a probability to its integer coin threshold with explicit
    /// rounding and clamping: decay fires when a uniform `u64` draw is
    /// `< threshold`, so the ideal threshold is `round(p · 2⁶⁴)`.
    ///
    /// Scaling by 2⁶⁴ is exact (a power-of-two shift of the 53-bit
    /// significand), so every `p < 1.0` maps to its threshold with zero
    /// error and only `p = 1.0` lands on 2⁶⁴ itself — which no `u64`
    /// holds, hence the explicit clamp to `u64::MAX` (miss probability
    /// 2⁻⁶⁴, the closest representable coin). The old
    /// `(p * u64::MAX as f64) as u64` got the same numbers by accident:
    /// `u64::MAX as f64` silently rounds **up** to 2⁶⁴ (the multiplier
    /// it named was not the one it used) and the saturating float→int
    /// cast absorbed the out-of-range `p = 1.0` product. Both of those
    /// implicit rescues are now spelled out.
    fn threshold_for(p: f64) -> u64 {
        const TWO_64: f64 = 18_446_744_073_709_551_616.0; // 2^64 exactly
        debug_assert!((0.0..=1.0).contains(&p));
        let t = (p * TWO_64).round();
        if t >= TWO_64 {
            u64::MAX
        } else {
            t as u64
        }
    }

    /// The decay probability for counter value `c` (0 past the cutoff).
    #[inline]
    pub fn probability(&self, c: u64) -> f64 {
        self.probs.get(c as usize).copied().unwrap_or(0.0)
    }

    /// The integer decay threshold for counter value `c`: decay fires
    /// when a uniform `u64` draw is below it (0 past the cutoff).
    #[inline]
    pub fn threshold(&self, c: u64) -> u64 {
        self.thresholds.get(c as usize).copied().unwrap_or(0)
    }

    /// The function this table was built from.
    pub fn decay_fn(&self) -> DecayFn {
        self.decay
    }

    /// The first counter value whose decay probability is treated as 0.
    pub fn cutoff(&self) -> u64 {
        self.probs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_matches_formula() {
        let d = DecayFn::exponential(1.08);
        for c in [1u64, 5, 21, 100] {
            let expect = 1.08f64.powi(-(c as i32));
            assert!((d.probability(c) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_prob_at_21() {
        // Figure 1 example: counter 21 decays with probability 1.08^-21.
        let d = DecayFn::default();
        let p = d.probability(21);
        assert!((p - 1.08f64.powi(-21)).abs() < 1e-12);
        assert!((p - 0.1986).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn all_functions_monotone_decreasing() {
        for d in [
            DecayFn::exponential(1.08),
            DecayFn::polynomial(1.5),
            DecayFn::sigmoid(0.08),
        ] {
            let mut prev = f64::INFINITY;
            for c in 1..200u64 {
                let p = d.probability(c);
                assert!(p <= prev + 1e-15, "{d:?} not monotone at c={c}");
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
        }
    }

    #[test]
    fn small_counters_decay_almost_surely() {
        // Section III-B: "When the value is small (e.g., 3) ... the
        // probability is close to 1".
        let d = DecayFn::default();
        assert!(d.probability(1) > 0.9);
        assert!(d.probability(3) > 0.75);
    }

    #[test]
    fn large_counters_effectively_never_decay() {
        let d = DecayFn::default();
        assert!(d.probability(300) < 1e-9);
    }

    #[test]
    fn table_matches_function_up_to_cutoff() {
        let f = DecayFn::exponential(1.08);
        let t = DecayTable::new(f);
        assert!(t.cutoff() > 100, "cutoff = {}", t.cutoff());
        for c in 0..t.cutoff() {
            assert!((t.probability(c) - f.probability(c)).abs() < 1e-15);
        }
        assert_eq!(t.probability(t.cutoff() + 1), 0.0);
    }

    #[test]
    fn table_cutoff_for_default_base_reasonable() {
        // b = 1.08: b^-C < 2^-40 at C ≈ 40·ln2/ln1.08 ≈ 360.
        let t = DecayTable::new(DecayFn::default());
        assert!((300..420).contains(&t.cutoff()), "cutoff = {}", t.cutoff());
    }

    #[test]
    fn thresholds_match_probabilities() {
        let t = DecayTable::new(DecayFn::exponential(1.08));
        for c in 0..t.cutoff() {
            let p = t.probability(c);
            let th = t.threshold(c);
            if p >= 1.0 {
                assert_eq!(th, u64::MAX);
            } else {
                let implied = th as f64 / u64::MAX as f64;
                assert!((implied - p).abs() < 1e-9, "c={c}: {implied} vs {p}");
            }
        }
        assert_eq!(t.threshold(t.cutoff() + 5), 0);
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn bad_base_panics() {
        DecayFn::exponential(1.0);
    }

    #[test]
    fn polynomial_at_one_is_one() {
        assert!((DecayFn::polynomial(2.0).probability(1) - 1.0).abs() < 1e-12);
    }

    /// Pins `c ∈ {0, 1, cutoff−1, cutoff}` for every variant: `c = 0`
    /// is unreachable in Case 3 (non-empty buckets have `C ≥ 1`) but
    /// the table starts at index 0, so its value is part of the
    /// contract, as are both sides of the cutoff.
    #[test]
    fn edge_counters_pinned_for_all_variants() {
        let cases: [(DecayFn, f64); 3] = [
            (DecayFn::exponential(1.08), 1.0), // b⁰ = 1
            (DecayFn::polynomial(1.5), 1.0),   // 0^{-b} clamped to 1
            (DecayFn::sigmoid(0.08), 0.5),     // 1 / (1 + e⁰)
        ];
        for (f, p0) in cases {
            let t = DecayTable::new(f);
            let cutoff = t.cutoff();
            assert!(cutoff >= 2, "{f:?}: degenerate table");

            // c = 0: the unreachable point, still well-defined.
            assert_eq!(t.probability(0), p0, "{f:?} at c=0");
            let expect_t0 = if p0 >= 1.0 { u64::MAX } else { 1u64 << 63 };
            assert_eq!(t.threshold(0), expect_t0, "{f:?} threshold at c=0");

            // c = 1: the first reachable counter; the coin must round,
            // not truncate.
            let p1 = f.probability(1);
            assert!((0.0..1.0).contains(&p1) || p1 == 1.0);
            let implied = t.threshold(1) as f64 / 18_446_744_073_709_551_616.0;
            assert!(
                (implied - p1).abs() < 1e-12,
                "{f:?} threshold(1) drifted: {implied} vs {p1}"
            );

            // c = cutoff − 1: the last live entry — small but non-zero.
            assert!(t.probability(cutoff - 1) >= NEGLIGIBLE, "{f:?}");
            assert!(t.threshold(cutoff - 1) > 0, "{f:?}");

            // c = cutoff: treated as exactly zero (no decay, no draw).
            assert_eq!(t.probability(cutoff), 0.0, "{f:?}");
            assert_eq!(t.threshold(cutoff), 0, "{f:?}");
        }
    }

    /// The coin is exact right up against 1.0: scaling by 2⁶⁴ is a
    /// power-of-two shift, so a probability one ulp below 1 keeps its
    /// precise threshold (no saturation to `u64::MAX`, which would
    /// overstate it), while `p = 1.0` itself clamps. (The base is the
    /// smallest `f64` above 1, so `1/b` is as close to 1 as an
    /// exponential probability gets.)
    #[test]
    fn threshold_near_one_is_exact_and_only_one_clamps() {
        let b = f64::from_bits(1.0f64.to_bits() + 1);
        assert!(b > 1.0);
        let t = DecayTable::new(DecayFn::exponential(b));
        let p1 = t.probability(1);
        assert!(p1 < 1.0, "probe must sit strictly below 1.0");
        assert_eq!(p1, 1.0 - f64::EPSILON, "1/b is one ulp below 1");
        // p1 · 2⁶⁴ exactly: (1 − 2⁻⁵²) · 2⁶⁴ = 2⁶⁴ − 2¹².
        assert_eq!(t.threshold(1), u64::MAX - 4095);
        // Only p = 1.0 (here b⁰ at c = 0) hits the explicit clamp.
        assert_eq!(t.threshold(0), u64::MAX);
    }
}
