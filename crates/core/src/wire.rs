//! Wire serialization: shipping a HeavyKeeper to the collector.
//!
//! Footnote 2's deployment has switches *send their sketches* to a
//! collector every period. [`ParallelTopK::to_wire`] /
//! [`ParallelTopK::from_wire`] implement that hop: a compact,
//! self-describing binary encoding of the configuration, the bucket
//! matrix, and the top-k store, suitable for a UDP report or an RPC
//! payload.
//!
//! ```text
//! magic "HKSK" | version u8 | key_len u8 |
//! config: arrays u16 | width u32 | k u32 | fp_bits u8 | ctr_bits u8 |
//!         seed u64 | decay tag u8 + param f64 | store u8 |
//!         expansion flag u8 [+ large u64 + blocked u64 + max u16]
//! buckets: arrays × width × (fp u32 | count u64)
//! store:   n u32, then n × (key bytes | count u64)
//! ```
//!
//! The decoded instance queries and merges identically to the original
//! (bucket state and store entries are bit-preserved). Two pieces of
//! *transient* state are intentionally not shipped: the decay RNG
//! position (the decoded sketch re-seeds from the config, which affects
//! reproducibility of *future* inserts, never correctness) and the
//! Section III-F blocked counter (restarts at 0; arrays already added
//! by expansion are preserved because the encoded config carries the
//! *current* array count).

use crate::config::{ExpansionPolicy, HkConfig, StoreKind};
use crate::decay::DecayFn;
use crate::parallel::ParallelTopK;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

const MAGIC: &[u8; 4] = b"HKSK";
const VERSION: u8 = 1;

/// Why a wire payload could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload does not start with the `HKSK` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Payload ends before a required field.
    Truncated,
    /// A field holds an impossible value (named for diagnostics).
    Corrupt(&'static str),
    /// The payload's key width does not match the requested key type,
    /// or the key type does not implement `from_key_bytes`.
    KeyMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a HKSK payload"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::Truncated => write!(f, "wire payload truncated"),
            Self::Corrupt(what) => write!(f, "corrupt field: {what}"),
            Self::KeyMismatch => write!(f, "key type does not match payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian cursor over a wire payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_decay(out: &mut Vec<u8>, decay: DecayFn) {
    let (tag, param) = match decay {
        DecayFn::Exponential { b } => (0u8, b),
        DecayFn::Polynomial { b } => (1, b),
        DecayFn::Sigmoid { lambda } => (2, lambda),
    };
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
}

fn decode_decay(r: &mut Reader<'_>) -> Result<DecayFn, WireError> {
    let tag = r.u8()?;
    let param = r.f64()?;
    if !param.is_finite() {
        return Err(WireError::Corrupt("decay parameter"));
    }
    match tag {
        0 if param > 1.0 => Ok(DecayFn::Exponential { b: param }),
        1 if param > 0.0 => Ok(DecayFn::Polynomial { b: param }),
        2 if param > 0.0 => Ok(DecayFn::Sigmoid { lambda: param }),
        0..=2 => Err(WireError::Corrupt("decay parameter range")),
        _ => Err(WireError::Corrupt("decay tag")),
    }
}

impl<K: FlowKey> ParallelTopK<K> {
    /// Serializes this instance for shipping to a collector.
    pub fn to_wire(&self) -> Vec<u8> {
        let sketch = self.sketch();
        let cfg = self.config();
        let top = self.top_k();
        let mut out = Vec::with_capacity(
            32 + sketch.arrays() * sketch.width() * 12 + top.len() * (K::ENCODED_LEN + 8),
        );
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(K::ENCODED_LEN as u8);

        // Config, with `arrays` reflecting the *current* matrix so that
        // Section III-F growth survives the round trip.
        out.extend_from_slice(&(sketch.arrays() as u16).to_le_bytes());
        out.extend_from_slice(&(sketch.width() as u32).to_le_bytes());
        out.extend_from_slice(&(cfg.k as u32).to_le_bytes());
        out.push(cfg.fingerprint_bits as u8);
        out.push(cfg.counter_bits as u8);
        out.extend_from_slice(&cfg.seed.to_le_bytes());
        encode_decay(&mut out, cfg.decay);
        out.push(match cfg.store {
            StoreKind::StreamSummary => 0,
            StoreKind::MinHeap => 1,
        });
        match cfg.expansion {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.large_counter.to_le_bytes());
                out.extend_from_slice(&p.blocked_threshold.to_le_bytes());
                out.extend_from_slice(&(p.max_arrays as u16).to_le_bytes());
            }
        }

        // Bucket matrix, streamed row by row over the packed row views.
        for j in 0..sketch.arrays() {
            let layout = sketch.matrix().layout();
            for &word in sketch.matrix().row(j) {
                let b = layout.unpack(word);
                out.extend_from_slice(&b.fp.to_le_bytes());
                out.extend_from_slice(&b.count.to_le_bytes());
            }
        }

        // Top-k store.
        out.extend_from_slice(&(top.len() as u32).to_le_bytes());
        for (key, count) in &top {
            out.extend_from_slice(key.key_bytes().as_slice());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }

    /// Reconstructs an instance from [`ParallelTopK::to_wire`] bytes.
    ///
    /// The key type `K` must match the one encoded (width-checked) and
    /// must implement [`FlowKey::from_key_bytes`].
    pub fn from_wire(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        if r.u8()? as usize != K::ENCODED_LEN {
            return Err(WireError::KeyMismatch);
        }

        let arrays = r.u16()? as usize;
        let width = r.u32()? as usize;
        let k = r.u32()? as usize;
        let fp_bits = r.u8()? as u32;
        let ctr_bits = r.u8()? as u32;
        let seed = r.u64()?;
        let decay = decode_decay(&mut r)?;
        let store = match r.u8()? {
            0 => StoreKind::StreamSummary,
            1 => StoreKind::MinHeap,
            _ => return Err(WireError::Corrupt("store kind")),
        };
        let expansion = match r.u8()? {
            0 => None,
            1 => Some(ExpansionPolicy {
                large_counter: r.u64()?,
                blocked_threshold: r.u64()?,
                max_arrays: r.u16()? as usize,
            }),
            _ => return Err(WireError::Corrupt("expansion flag")),
        };
        if arrays == 0 || arrays > crate::sketch::MAX_ARRAYS {
            return Err(WireError::Corrupt("array count"));
        }
        if width == 0 || k == 0 {
            return Err(WireError::Corrupt("width/k"));
        }
        if fp_bits == 0 || fp_bits > 32 || ctr_bits == 0 || ctr_bits >= 64 {
            return Err(WireError::Corrupt("field widths"));
        }
        if fp_bits + ctr_bits > 64 {
            // The packed bucket word cannot hold both fields; reject
            // instead of letting the config constructor panic.
            return Err(WireError::Corrupt("field widths"));
        }

        let mut builder = HkConfig::builder()
            .arrays(arrays)
            .width(width)
            .k(k)
            .fingerprint_bits(fp_bits)
            .counter_bits(ctr_bits)
            .seed(seed)
            .decay(decay)
            .store(store);
        if let Some(p) = expansion {
            builder = builder.expansion(p);
        }
        let mut hk = ParallelTopK::<K>::new(builder.build());

        // Bucket matrix.
        let counter_max = hk.sketch().counter_max();
        let fp_max = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };
        for j in 0..arrays {
            for i in 0..width {
                let mut cell = Reader {
                    data: r.take(12)?,
                    pos: 0,
                };
                let fp = cell.u32()?;
                let count = cell.u64()?;
                if fp > fp_max {
                    return Err(WireError::Corrupt("bucket fingerprint"));
                }
                if count > counter_max {
                    return Err(WireError::Corrupt("bucket counter"));
                }
                if count == 0 && fp != 0 {
                    return Err(WireError::Corrupt("empty bucket with fingerprint"));
                }
                hk.sketch_mut()
                    .set_bucket(j, i, crate::bucket::Bucket { fp, count });
            }
        }

        // Top-k store, re-offered largest-first so admissions succeed.
        let n = r.u32()? as usize;
        if n > k {
            return Err(WireError::Corrupt("store size"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let kb = r.take(K::ENCODED_LEN)?;
            let key = K::from_key_bytes(kb).ok_or(WireError::KeyMismatch)?;
            let count = r.u64()?;
            entries.push((key, count));
        }
        if r.pos != data.len() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        entries.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (key, count) in entries {
            if count == 0 {
                return Err(WireError::Corrupt("zero store count"));
            }
            hk.offer(key, count);
        }
        Ok(hk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(seed: u64) -> ParallelTopK<u64> {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(64)
            .k(8)
            .seed(seed)
            .build();
        let mut hk = ParallelTopK::new(cfg);
        let mut state = seed | 1;
        for _ in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 6
            } else {
                100 + state % 1000
            };
            hk.insert(&f);
        }
        hk
    }

    #[test]
    fn roundtrip_preserves_queries_and_topk() {
        let hk = populated(9);
        let wire = hk.to_wire();
        let back = ParallelTopK::<u64>::from_wire(&wire).unwrap();
        // The store's order among equal counts is unspecified (re-offer
        // reorders ties); compare as sorted sets.
        let canon = |mut v: Vec<(u64, u64)>| {
            v.sort_unstable();
            v
        };
        assert_eq!(canon(hk.top_k()), canon(back.top_k()));
        for f in 0..1200u64 {
            assert_eq!(hk.query(&f), back.query(&f), "flow {f}");
        }
        assert_eq!(hk.config(), back.config());
        assert_eq!(hk.memory_bytes(), back.memory_bytes());
    }

    #[test]
    fn decoded_sketch_keeps_working() {
        let hk = populated(4);
        let mut back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        let before = back.query(&0);
        for _ in 0..100 {
            back.insert(&0);
        }
        assert!(back.query(&0) >= before, "inserts after decode must work");
    }

    #[test]
    fn decoded_sketch_merges_with_original_lineage() {
        // The collector path: decode a shipped sketch and merge it with
        // another same-config instance.
        let a = populated(7);
        let wire = a.to_wire();
        let mut decoded = ParallelTopK::<u64>::from_wire(&wire).unwrap();
        let b = {
            let cfg = a.config().clone();
            let mut hk = ParallelTopK::<u64>::new(cfg);
            for _ in 0..500 {
                hk.insert(&424242);
            }
            hk
        };
        decoded.merge_from(&b).unwrap();
        // Sum-merge may shave a few counts off in bucket conflicts with
        // the decoded sketch's residents; never over-estimates.
        let est = decoded.query(&424242);
        assert!(est <= 500, "over-estimation after decode+merge");
        assert!(est >= 450, "merge lost the flow: {est}");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ParallelTopK::<u64>::from_wire(b"NOPE").unwrap_err(),
            WireError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let wire = populated(3).to_wire();
        for cut in 0..wire.len() {
            let err = ParallelTopK::<u64>::from_wire(&wire[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = populated(3).to_wire();
        wire.push(0);
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn key_width_mismatch_rejected() {
        let wire = populated(3).to_wire();
        assert_eq!(
            ParallelTopK::<u32>::from_wire(&wire).unwrap_err(),
            WireError::KeyMismatch
        );
    }

    #[test]
    fn corrupt_counter_rejected() {
        let hk = populated(3);
        let mut wire = hk.to_wire();
        // First bucket's count field: bytes after the fixed header.
        // Header: 4 magic + 1 ver + 1 keylen + 2 arrays + 4 width + 4 k
        // + 1 fp + 1 ctr + 8 seed + 9 decay + 1 store + 1 expansion = 37.
        let count_off = 37 + 4;
        wire[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt(_)
        ));
    }

    #[test]
    fn oversized_field_widths_rejected_not_panicking() {
        // fp_bits = 32 and ctr_bits = 40 each pass the individual range
        // checks but cannot share one packed bucket word; decoding must
        // return Corrupt, not panic in the config constructor.
        let mut wire = populated(3).to_wire();
        // Header: 4 magic + 1 ver + 1 keylen + 2 arrays + 4 width + 4 k.
        wire[16] = 32; // fp_bits
        wire[17] = 40; // ctr_bits
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt("field widths")
        );
    }

    #[test]
    fn version_checked() {
        let mut wire = populated(3).to_wire();
        wire[4] = 9;
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::BadVersion(9)
        );
    }

    #[test]
    fn expansion_policy_survives_roundtrip() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(8)
            .k(4)
            .seed(1)
            .expansion(ExpansionPolicy {
                large_counter: 77,
                blocked_threshold: 99,
                max_arrays: 5,
            })
            .build();
        let hk = ParallelTopK::<u64>::new(cfg);
        let back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        assert_eq!(back.config().expansion, hk.config().expansion);
    }

    #[test]
    fn grown_arrays_survive_roundtrip() {
        // Force Section III-F growth, then round-trip: the extra array
        // and its contents must survive.
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(2)
            .k(2)
            .seed(9)
            .expansion(ExpansionPolicy {
                large_counter: 50,
                blocked_threshold: 100,
                max_arrays: 6,
            })
            .build();
        let mut hk = ParallelTopK::<u64>::new(cfg);
        for f in 0..4u64 {
            for _ in 0..2000 {
                hk.insert(&f);
            }
        }
        for _ in 0..3000 {
            hk.insert(&999);
        }
        assert!(hk.sketch().expansions() > 0, "growth precondition");
        let back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        assert_eq!(back.sketch().arrays(), hk.sketch().arrays());
        for f in [0u64, 1, 2, 3, 999] {
            assert_eq!(back.query(&f), hk.query(&f));
        }
    }
}
