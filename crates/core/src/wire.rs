//! Wire serialization: shipping a HeavyKeeper to the collector.
//!
//! Footnote 2's deployment has switches *send their sketches* to a
//! collector every period. [`ParallelTopK::to_wire`] /
//! [`ParallelTopK::from_wire`] implement that hop: a compact,
//! self-describing binary encoding of the configuration, the bucket
//! matrix, and the top-k store, suitable for a UDP report or an RPC
//! payload.
//!
//! ```text
//! magic "HKSK" | version u8 | key_len u8 |
//! config: arrays u16 | width u32 | k u32 | fp_bits u8 | ctr_bits u8 |
//!         seed u64 | decay tag u8 + param f64 | store u8 |
//!         expansion flag u8 [+ large u64 + blocked u64 + max u16]
//! buckets: arrays × width × (fp u32 | count u64)
//! store:   n u32, then n × (key bytes | count u64)
//! ```
//!
//! The decoded instance queries and merges identically to the original
//! (bucket state and store entries are bit-preserved). Two pieces of
//! *transient* state are intentionally not shipped: the decay RNG
//! position (the decoded sketch re-seeds from the config, which affects
//! reproducibility of *future* inserts, never correctness) and the
//! Section III-F blocked counter (restarts at 0; arrays already added
//! by expansion are preserved because the encoded config carries the
//! *current* array count).

use crate::config::{ExpansionPolicy, HkConfig, StoreKind};
use crate::decay::DecayFn;
use crate::parallel::ParallelTopK;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

const MAGIC: &[u8; 4] = b"HKSK";
const VERSION: u8 = 1;

/// Why a wire payload could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload does not start with the `HKSK` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Payload ends before a required field.
    Truncated,
    /// A field holds an impossible value (named for diagnostics).
    Corrupt(&'static str),
    /// The payload's key width does not match the requested key type,
    /// or the key type does not implement `from_key_bytes`.
    KeyMismatch,
    /// An epoch payload's CRC-32 does not match its bytes (wire v2
    /// window frames checksum every epoch record).
    BadCrc {
        /// Index of the failing epoch record within the frame.
        epoch: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a HKSK payload"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::Truncated => write!(f, "wire payload truncated"),
            Self::Corrupt(what) => write!(f, "corrupt field: {what}"),
            Self::KeyMismatch => write!(f, "key type does not match payload"),
            Self::BadCrc { epoch } => write!(f, "epoch record {epoch} fails its CRC"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian cursor over a wire payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_decay(out: &mut Vec<u8>, decay: DecayFn) {
    let (tag, param) = match decay {
        DecayFn::Exponential { b } => (0u8, b),
        DecayFn::Polynomial { b } => (1, b),
        DecayFn::Sigmoid { lambda } => (2, lambda),
    };
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
}

fn decode_decay(r: &mut Reader<'_>) -> Result<DecayFn, WireError> {
    let tag = r.u8()?;
    let param = r.f64()?;
    if !param.is_finite() {
        return Err(WireError::Corrupt("decay parameter"));
    }
    match tag {
        0 if param > 1.0 => Ok(DecayFn::Exponential { b: param }),
        1 if param > 0.0 => Ok(DecayFn::Polynomial { b: param }),
        2 if param > 0.0 => Ok(DecayFn::Sigmoid { lambda: param }),
        0..=2 => Err(WireError::Corrupt("decay parameter range")),
        _ => Err(WireError::Corrupt("decay tag")),
    }
}

impl<K: FlowKey> ParallelTopK<K> {
    /// Serializes this instance for shipping to a collector.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.wire_into(&mut out);
        out
    }

    /// [`ParallelTopK::to_wire`], appended to an existing buffer — the
    /// windowed frame encoder streams every epoch payload straight into
    /// the frame through this, with no intermediate per-epoch `Vec`.
    pub(crate) fn wire_into(&self, out: &mut Vec<u8>) {
        let sketch = self.sketch();
        let cfg = self.config();
        // Canonical store order (count desc, ties on key bytes): the
        // store's internal tie order is admission-history dependent, and
        // a checkpoint round trip replays admissions in a different
        // order — encoding must not depend on it, or restored state
        // would re-encode to different bytes.
        let mut top = self.top_k();
        top.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.key_bytes().as_slice().cmp(b.0.key_bytes().as_slice()))
        });
        out.reserve(32 + sketch.arrays() * sketch.width() * 12 + top.len() * (K::ENCODED_LEN + 8));
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(K::ENCODED_LEN as u8);

        // Config, with `arrays` reflecting the *current* matrix so that
        // Section III-F growth survives the round trip.
        out.extend_from_slice(&(sketch.arrays() as u16).to_le_bytes());
        out.extend_from_slice(&(sketch.width() as u32).to_le_bytes());
        out.extend_from_slice(&(cfg.k as u32).to_le_bytes());
        out.push(cfg.fingerprint_bits as u8);
        out.push(cfg.counter_bits as u8);
        out.extend_from_slice(&cfg.seed.to_le_bytes());
        encode_decay(out, cfg.decay);
        out.push(match cfg.store {
            StoreKind::StreamSummary => 0,
            StoreKind::MinHeap => 1,
        });
        match cfg.expansion {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.large_counter.to_le_bytes());
                out.extend_from_slice(&p.blocked_threshold.to_le_bytes());
                out.extend_from_slice(&(p.max_arrays as u16).to_le_bytes());
            }
        }

        // Bucket matrix, streamed row by row over the packed row views.
        for j in 0..sketch.arrays() {
            let layout = sketch.matrix().layout();
            for &word in sketch.matrix().row(j) {
                let b = layout.unpack(word);
                out.extend_from_slice(&b.fp.to_le_bytes());
                out.extend_from_slice(&b.count.to_le_bytes());
            }
        }

        // Top-k store.
        out.extend_from_slice(&(top.len() as u32).to_le_bytes());
        for (key, count) in &top {
            out.extend_from_slice(key.key_bytes().as_slice());
            out.extend_from_slice(&count.to_le_bytes());
        }
    }

    /// Reconstructs an instance from [`ParallelTopK::to_wire`] bytes.
    ///
    /// The key type `K` must match the one encoded (width-checked) and
    /// must implement [`FlowKey::from_key_bytes`].
    pub fn from_wire(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        if r.u8()? as usize != K::ENCODED_LEN {
            return Err(WireError::KeyMismatch);
        }

        let arrays = r.u16()? as usize;
        let width = r.u32()? as usize;
        let k = r.u32()? as usize;
        let fp_bits = r.u8()? as u32;
        let ctr_bits = r.u8()? as u32;
        let seed = r.u64()?;
        let decay = decode_decay(&mut r)?;
        let store = match r.u8()? {
            0 => StoreKind::StreamSummary,
            1 => StoreKind::MinHeap,
            _ => return Err(WireError::Corrupt("store kind")),
        };
        let expansion = match r.u8()? {
            0 => None,
            1 => Some(ExpansionPolicy {
                large_counter: r.u64()?,
                blocked_threshold: r.u64()?,
                max_arrays: r.u16()? as usize,
            }),
            _ => return Err(WireError::Corrupt("expansion flag")),
        };
        if arrays == 0 || arrays > crate::sketch::MAX_ARRAYS {
            return Err(WireError::Corrupt("array count"));
        }
        if width == 0 || k == 0 {
            return Err(WireError::Corrupt("width/k"));
        }
        if fp_bits == 0 || fp_bits > 32 || ctr_bits == 0 || ctr_bits >= 64 {
            return Err(WireError::Corrupt("field widths"));
        }
        if fp_bits + ctr_bits > 64 {
            // The packed bucket word cannot hold both fields; reject
            // instead of letting the config constructor panic.
            return Err(WireError::Corrupt("field widths"));
        }

        let mut builder = HkConfig::builder()
            .arrays(arrays)
            .width(width)
            .k(k)
            .fingerprint_bits(fp_bits)
            .counter_bits(ctr_bits)
            .seed(seed)
            .decay(decay)
            .store(store);
        if let Some(p) = expansion {
            builder = builder.expansion(p);
        }
        let mut hk = ParallelTopK::<K>::new(builder.build());

        // Bucket matrix.
        let counter_max = hk.sketch().counter_max();
        let fp_max = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };
        for j in 0..arrays {
            for i in 0..width {
                let mut cell = Reader {
                    data: r.take(12)?,
                    pos: 0,
                };
                let fp = cell.u32()?;
                let count = cell.u64()?;
                if fp > fp_max {
                    return Err(WireError::Corrupt("bucket fingerprint"));
                }
                if count > counter_max {
                    return Err(WireError::Corrupt("bucket counter"));
                }
                if count == 0 && fp != 0 {
                    return Err(WireError::Corrupt("empty bucket with fingerprint"));
                }
                hk.sketch_mut()
                    .set_bucket(j, i, crate::bucket::Bucket { fp, count });
            }
        }

        // Top-k store, re-offered largest-first so admissions succeed.
        let n = r.u32()? as usize;
        if n > k {
            return Err(WireError::Corrupt("store size"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let kb = r.take(K::ENCODED_LEN)?;
            let key = K::from_key_bytes(kb).ok_or(WireError::KeyMismatch)?;
            let count = r.u64()?;
            entries.push((key, count));
        }
        if r.pos != data.len() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        entries.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (key, count) in entries {
            if count == 0 {
                return Err(WireError::Corrupt("zero store count"));
            }
            hk.offer(key, count);
        }
        Ok(hk)
    }
}

// ---------------------------------------------------------------------
// Wire v2/v3: the windowed telemetry frame (epoch-ring framing).
//
// A sliding-window deployment cannot ship its state as one v1 sketch:
// the measurement unit is a ring of W epoch sketches plus a rotation
// counter, and steady-state export should not pay O(W · sketch) per
// period when only one epoch changed. The frame carries three shapes
// under one header:
//
// ```text
// magic "HKWF" | version u8 (2 full/delta, 3 dirty) |
// kind u8 (0 full / 1 delta / 2 dirty) | key_len u8 |
// switch_id u64 | rotation u64 | window u16 | live u16 | epoch_packets u32
// then `live` records, oldest -> newest:
//   payload_len u32 | payload | crc32 u32
// ```
//
// * **Full** frames (v2) carry every live epoch (the accumulating
//   newest included) as v1 "HKSK" payloads — the initial snapshot and
//   the resync path.
// * **Delta** frames (v2) carry exactly one v1 record: the epoch that
//   was *closed* by rotation number `rotation` — O(one sketch) per
//   period regardless of W.
// * **Dirty** frames (v3) carry exactly one "HKDP" record: the closed
//   epoch expressed as a *patch* against the previous export — a
//   per-row changed-bucket bitmap (RLE over all-zero bitmap words) plus
//   varint-coded `old XOR new` packed words, and the whole top-k store.
//   Steady-state cost is O(changed buckets), which HeavyKeeper's own
//   thesis makes O(elephants): almost all buckets hold mice or nothing
//   and are untouched between rotations.
//
// Every record is CRC-32-checksummed independently, so corruption is
// detected before any expensive decode. `rotation` orders frames
// identically for deltas and dirty patches: the collector applies
// rotation R only on top of state at rotation R-1, treats R ≤ current
// as a duplicate (idempotent drop) and R > current+1 as a gap that
// flags the switch for resync.
// ---------------------------------------------------------------------

/// Magic prefix of a windowed telemetry frame.
const FRAME_MAGIC: &[u8; 4] = b"HKWF";
/// Wire version of full/delta window frames.
const FRAME_VERSION: u8 = 2;
/// Wire version of dirty-patch window frames ([`FrameKind::Dirty`]).
const DIRTY_FRAME_VERSION: u8 = 3;
/// Magic prefix of a dirty-patch record payload (where full/delta
/// records carry a v1 "HKSK" sketch).
const DIRTY_MAGIC: &[u8; 4] = b"HKDP";

/// Whether a window frame is a full snapshot, a single-epoch delta, or
/// a dirty-bucket patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Every live epoch of the ring (snapshot / resync).
    Full,
    /// Only the epoch closed by `rotation` (steady-state export).
    Delta,
    /// The epoch closed by `rotation` as a changed-buckets patch
    /// against the epoch closed by `rotation - 1` (wire v3; the
    /// O(elephants) steady-state export).
    Dirty,
}

/// A decoded windowed telemetry frame: one switch's epoch-ring state
/// (or its newest closed epoch) plus the metadata the collector needs
/// to reassemble the ring.
#[derive(Debug, Clone)]
pub struct WindowFrame<K: FlowKey> {
    /// Which switch exported the frame (assigned by the deployment).
    pub switch_id: u64,
    /// The switch's rotation counter at export time. For a delta this
    /// is the rotation that closed the carried epoch.
    pub rotation: u64,
    /// The ring size `W` the switch runs.
    pub window: usize,
    /// The switch's per-epoch packet budget (periods are cut every this
    /// many packets); carried so artifacts are self-describing.
    pub epoch_packets: u32,
    /// Snapshot, delta, or dirty patch.
    pub kind: FrameKind,
    /// The carried epochs, oldest first. `len == 1` for a delta; for a
    /// full frame the last entry is the accumulating newest epoch;
    /// empty for a dirty frame (its record is [`WindowFrame::patch`]).
    pub epochs: Vec<ParallelTopK<K>>,
    /// The dirty-bucket patch — `Some` iff `kind` is
    /// [`FrameKind::Dirty`]. Applied to a replica's newest closed epoch
    /// via [`DirtyPatch::apply`].
    pub patch: Option<DirtyPatch<K>>,
}

/// True when two configurations describe the *same ring* — equal in
/// every field except `arrays`, which Section III-F expansion grows
/// per-epoch at runtime (one window's epochs can legitimately hold
/// different array counts, and so can a replica and the delta that
/// advances it).
pub(crate) fn same_ring_config(a: &HkConfig, b: &HkConfig) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.arrays = 0;
    b.arrays = 0;
    a == b
}

/// Appends the shared frame header.
#[allow(clippy::too_many_arguments)]
fn encode_frame_header(
    out: &mut Vec<u8>,
    kind: FrameKind,
    key_len: usize,
    switch_id: u64,
    rotation: u64,
    window: usize,
    live: usize,
    epoch_packets: u32,
) {
    // The header carries these as u16; silent truncation would emit a
    // frame the decoder rejects (or, worse, one with a wrong ring
    // size). A >65535-epoch window is 65536 sketches of memory — far
    // past any sane deployment — so refuse loudly instead of encoding
    // garbage.
    assert!(
        window <= u16::MAX as usize && live <= u16::MAX as usize,
        "window frame fields exceed the wire format's u16 range ({window} epochs)"
    );
    out.extend_from_slice(FRAME_MAGIC);
    out.push(match kind {
        FrameKind::Full | FrameKind::Delta => FRAME_VERSION,
        FrameKind::Dirty => DIRTY_FRAME_VERSION,
    });
    out.push(match kind {
        FrameKind::Full => 0,
        FrameKind::Delta => 1,
        FrameKind::Dirty => 2,
    });
    out.push(key_len as u8);
    out.extend_from_slice(&switch_id.to_le_bytes());
    out.extend_from_slice(&rotation.to_le_bytes());
    out.extend_from_slice(&(window as u16).to_le_bytes());
    out.extend_from_slice(&(live as u16).to_le_bytes());
    out.extend_from_slice(&epoch_packets.to_le_bytes());
}

/// Appends one epoch record: length-prefixed v1 payload plus its CRC.
/// The payload is streamed straight into `out` (the epoch's packed row
/// views feed [`ParallelTopK::wire_into`]); the length is back-patched
/// and the CRC computed over the written range — no intermediate copy.
fn encode_epoch_record<K: FlowKey>(out: &mut Vec<u8>, epoch: &ParallelTopK<K>) {
    let len_at = out.len();
    out.extend_from_slice(&0u32.to_le_bytes()); // placeholder
    let payload_at = out.len();
    epoch.wire_into(out);
    let payload_len = out.len() - payload_at;
    out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    let crc = hk_common::crc::crc32(&out[payload_at..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

impl<K: FlowKey> crate::sliding::SlidingTopK<K> {
    /// Exports the whole ring as a [`FrameKind::Full`] window frame:
    /// every live epoch (the accumulating newest included), the
    /// rotation counter, and the per-epoch packet budget. This is the
    /// initial snapshot a delta stream starts from, and the resync
    /// payload after loss.
    pub fn export_frame(&self, switch_id: u64, epoch_packets: u32) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(64 + self.live_epochs() * 1024);
        encode_frame_header(
            &mut out,
            FrameKind::Full,
            K::ENCODED_LEN,
            switch_id,
            self.rotations(),
            self.window(),
            self.live_epochs(),
            epoch_packets,
        );
        for epoch in self.epoch_iter() {
            encode_epoch_record(&mut out, epoch);
        }
        self.note_export(out.len());
        out
    }

    /// Exports the newest *closed* epoch as a [`FrameKind::Delta`]
    /// frame — the steady-state export, O(one sketch) per rotation
    /// instead of the full frame's O(W · sketch).
    ///
    /// The carried epoch is the one closed by the latest
    /// [`rotate`](crate::sliding::SlidingTopK::rotate) (closed epochs
    /// are immutable, so the delta is valid any time before the next
    /// rotation). Returns `None` when no closed epoch is live — before
    /// the first rotation, and *always* for a `W = 1` window (its only
    /// slot is the accumulating epoch; rotation evicts the closed one
    /// immediately) — ship [`export_frame`] instead.
    ///
    /// This `Option`-with-fallback contract is the precedent the dirty
    /// exporter extends: [`export_dirty`] likewise returns `None`
    /// whenever its preconditions (a closed epoch *and* a fresh shadow
    /// snapshot) do not hold, and the caller downgrades to this method
    /// or to [`export_frame`]. Pinned by the
    /// `export_delta_option_contract_pins_fallback_precedent` test.
    ///
    /// [`export_frame`]: crate::sliding::SlidingTopK::export_frame
    /// [`export_dirty`]: crate::sliding::SlidingTopK::export_dirty
    pub fn export_delta(&self, switch_id: u64, epoch_packets: u32) -> Option<Vec<u8>> {
        // The newest closed epoch sits just behind the accumulating one.
        let closed = self.epoch_iter().rev().nth(1)?;
        let mut out = Vec::with_capacity(64 + 1024);
        encode_frame_header(
            &mut out,
            FrameKind::Delta,
            K::ENCODED_LEN,
            switch_id,
            self.rotations(),
            self.window(),
            1,
            epoch_packets,
        );
        encode_epoch_record(&mut out, closed);
        self.note_export(out.len());
        Some(out)
    }

    /// Exports the newest closed epoch as a [`FrameKind::Dirty`] frame:
    /// a patch of only the buckets whose packed words *changed* since
    /// the previous export, scan-and-compared against a retained shadow
    /// snapshot — plain u64 compares at export time, no per-write dirty
    /// tracking, the ingest hot path untouched. Steady-state cost is
    /// O(changed buckets) ≈ O(elephants) instead of the plain delta's
    /// O(sketch).
    ///
    /// Returns `Some(frame)` only when the shadow snapshots exactly the
    /// epoch closed by `rotation - 1` (and the geometry still matches);
    /// the shadow is then advanced to the epoch just closed. In every
    /// other case — before the first rotation, for `W = 1` windows
    /// (same rule as [`export_delta`], whose `Option` contract is the
    /// tested precedent), on the first call after construction, or
    /// after a skipped rotation — it *re-primes* the shadow from the
    /// current closed epoch and returns `None`: the caller must ship
    /// [`export_delta`] or [`export_frame`] for this rotation instead.
    /// Both fallbacks carry the same closed epoch the refreshed shadow
    /// now snapshots, so exporter shadow and collector baseline stay in
    /// lockstep and the *next* rotation can go dirty.
    ///
    /// The shadow costs one extra matrix per window and is accounted to
    /// the telemetry plane, not [`memory_bytes`].
    ///
    /// [`export_delta`]: crate::sliding::SlidingTopK::export_delta
    /// [`export_frame`]: crate::sliding::SlidingTopK::export_frame
    /// [`memory_bytes`]: crate::sliding::SlidingTopK::memory_bytes
    pub fn export_dirty(&mut self, switch_id: u64, epoch_packets: u32) -> Option<Vec<u8>> {
        use crate::sliding::ExportShadow;

        let rotation = self.rotations();
        let window = self.window();
        if self.live_epochs() < 2 {
            // No closed epoch to snapshot or ship (pre-first-rotation,
            // or W = 1): drop any stale shadow.
            self.export_shadow = None;
            return None;
        }
        // Borrow phase: diff-and-encode (or just snapshot) against the
        // closed epoch, producing the frame bytes and the new shadow.
        let (bytes, next_shadow) = {
            let closed = self
                .epoch_iter()
                .rev()
                .nth(1)
                .expect("two or more live epochs");
            let sketch = closed.sketch();
            let rows = sketch.arrays();
            let width = sketch.width();
            let fresh = self
                .export_shadow
                .as_ref()
                .is_some_and(|s| s.rotation + 1 == rotation && s.width == width);
            let bytes = if fresh {
                let shadow = self.export_shadow.as_ref().expect("checked fresh");
                let mut out = Vec::with_capacity(HEADER_LEN + 256);
                encode_frame_header(
                    &mut out,
                    FrameKind::Dirty,
                    K::ENCODED_LEN,
                    switch_id,
                    rotation,
                    window,
                    1,
                    epoch_packets,
                );
                let len_at = out.len();
                out.extend_from_slice(&0u32.to_le_bytes()); // placeholder
                let payload_at = out.len();
                encode_dirty_payload(&mut out, closed, shadow);
                let payload_len = out.len() - payload_at;
                out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
                let crc = hk_common::crc::crc32(&out[payload_at..]);
                out.extend_from_slice(&crc.to_le_bytes());
                Some(out)
            } else {
                None
            };
            let next_shadow = ExportShadow {
                rotation,
                rows,
                width,
                words: sketch.snapshot_words(),
            };
            (bytes, next_shadow)
        };
        self.export_shadow = Some(next_shadow);
        if let Some(b) = &bytes {
            self.note_export(b.len());
        }
        bytes
    }
}

/// Length of the fixed frame header (shared by full, delta and dirty).
const HEADER_LEN: usize = 31;

/// Appends the dirty-patch record payload: the closed epoch diffed
/// against the shadow, rows beyond the shadow (Section III-F expansion
/// since the last export) diffed against an all-empty baseline, then
/// the whole top-k store (small — `k` entries — and not worth diffing).
fn encode_dirty_payload<K: FlowKey>(
    out: &mut Vec<u8>,
    closed: &ParallelTopK<K>,
    shadow: &crate::sliding::ExportShadow,
) {
    use hk_common::varint;

    let sketch = closed.sketch();
    let matrix = sketch.matrix();
    let (rows, width) = (matrix.rows(), matrix.width());
    debug_assert_eq!(shadow.width, width, "caller checked geometry");

    out.extend_from_slice(DIRTY_MAGIC);
    varint::write_u64(out, rows as u64);
    varint::write_u64(out, width as u64);
    let mut bitmap: Vec<u64> = Vec::new();
    for j in 0..rows {
        let base = if j < shadow.rows {
            Some(&shadow.words[j * width..(j + 1) * width])
        } else {
            None
        };
        matrix.diff_row_bitmap(j, base, &mut bitmap);
        varint::write_bitmap_rle(out, &bitmap);
        let row = matrix.row(j);
        for (i, &new) in row.iter().enumerate() {
            if bitmap[i / 64] & (1u64 << (i % 64)) != 0 {
                let old = base.map_or(0, |b| b[i]);
                varint::write_u64(out, old ^ new);
            }
        }
    }
    let top = closed.top_k();
    varint::write_u64(out, top.len() as u64);
    for (key, count) in &top {
        out.extend_from_slice(key.key_bytes().as_slice());
        varint::write_u64(out, *count);
    }
}

/// A decoded [`FrameKind::Dirty`] record: which buckets of the closed
/// epoch changed since the previous export, and how — `old XOR new`
/// packed words, stored densely (zero = unchanged) so
/// [`DirtyPatch::apply`] is one XOR walk — plus the epoch's whole
/// top-k store.
#[derive(Debug, Clone)]
pub struct DirtyPatch<K: FlowKey> {
    rows: usize,
    width: usize,
    /// `rows × width` XOR diffs, row-major; zero means unchanged.
    words: Vec<u64>,
    store: Vec<(K, u64)>,
}

impl<K: FlowKey> DirtyPatch<K> {
    /// Matrix rows of the patched epoch (the new epoch's array count —
    /// Section III-F expansion can make it differ from the baseline's).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix width of the patched epoch (must equal the ring's).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Decodes one "HKDP" record payload (CRC already verified by the
    /// frame decoder). Structural validation only — semantic limits
    /// (counter/fingerprint ranges, store size) need the ring config
    /// and are enforced by [`DirtyPatch::apply`].
    fn decode(data: &[u8]) -> Result<Self, WireError> {
        use hk_common::varint;

        if data.len() < 4 || &data[..4] != DIRTY_MAGIC {
            return Err(WireError::Corrupt("dirty patch magic"));
        }
        let mut pos = 4usize;
        let rows = varint::read_u64(data, &mut pos).ok_or(WireError::Corrupt("patch varint"))?;
        let width = varint::read_u64(data, &mut pos).ok_or(WireError::Corrupt("patch varint"))?;
        if rows == 0 || rows > crate::sketch::MAX_ARRAYS as u64 {
            return Err(WireError::Corrupt("array count"));
        }
        if width == 0 || width > u32::MAX as u64 {
            return Err(WireError::Corrupt("width/k"));
        }
        let (rows, width) = (rows as usize, width as usize);
        let bitmap_words = width.div_ceil(64);
        let mut words = vec![0u64; rows * width];
        let mut bitmap: Vec<u64> = Vec::with_capacity(bitmap_words);
        for j in 0..rows {
            varint::read_bitmap_rle(data, &mut pos, bitmap_words, &mut bitmap)
                .ok_or(WireError::Corrupt("dirty bitmap"))?;
            // Bits past `width` in the last bitmap word name no bucket.
            if width % 64 != 0 && bitmap[bitmap_words - 1] >> (width % 64) != 0 {
                return Err(WireError::Corrupt("dirty bitmap tail"));
            }
            let row = &mut words[j * width..(j + 1) * width];
            for (w, &bits) in bitmap.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let diff = varint::read_u64(data, &mut pos)
                        .ok_or(WireError::Corrupt("patch varint"))?;
                    if diff == 0 {
                        // A zero diff means the bucket did not change;
                        // its bitmap bit must not have been set.
                        return Err(WireError::Corrupt("zero dirty diff"));
                    }
                    row[i] = diff;
                }
            }
        }
        let n = varint::read_u64(data, &mut pos).ok_or(WireError::Corrupt("patch varint"))?;
        if n > data.len() as u64 {
            // Cheap sanity bound before allocating: every entry costs
            // at least one byte on the wire.
            return Err(WireError::Corrupt("store size"));
        }
        let mut store = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let end = pos
                .checked_add(K::ENCODED_LEN)
                .ok_or(WireError::Truncated)?;
            let kb = data.get(pos..end).ok_or(WireError::Truncated)?;
            pos = end;
            let key = K::from_key_bytes(kb).ok_or(WireError::KeyMismatch)?;
            let count =
                varint::read_u64(data, &mut pos).ok_or(WireError::Corrupt("patch varint"))?;
            if count == 0 {
                return Err(WireError::Corrupt("zero store count"));
            }
            store.push((key, count));
        }
        if pos != data.len() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(Self {
            rows,
            width,
            words,
            store,
        })
    }

    /// Reconstructs the closed epoch this patch describes:
    /// `base XOR diff` over the packed words, where `base` is the
    /// collector replica's newest closed epoch (the epoch closed by
    /// `rotation - 1`, bit-exact by the delta-protocol invariant) and
    /// rows beyond it patch an all-empty baseline. `ring_cfg` is the
    /// replica's configuration; the reconstructed epoch opens from it
    /// with this patch's array count.
    ///
    /// Every *changed* word is validated like
    /// [`ParallelTopK::from_wire`] validates buckets (counter and
    /// fingerprint within their configured ranges, no empty bucket with
    /// a fingerprint); unchanged words were validated when the baseline
    /// was installed. The store is re-offered largest-first, like the
    /// v1 decode path.
    pub fn apply(
        &self,
        base: Option<&ParallelTopK<K>>,
        ring_cfg: &HkConfig,
    ) -> Result<ParallelTopK<K>, WireError> {
        if self.width != ring_cfg.width {
            return Err(WireError::Corrupt("patch width"));
        }
        let mut cfg = ring_cfg.clone();
        cfg.arrays = self.rows;
        let mut hk = ParallelTopK::<K>::new(cfg);
        let layout = hk.sketch().matrix().layout();
        let counter_max = hk.sketch().counter_max();
        let fp_bits = hk.sketch().fingerprint_bits();
        let fp_max = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };

        // Seed from the baseline (missing/shorter baselines leave the
        // fresh all-empty rows), then XOR the diffs in.
        if let Some(base) = base {
            let src = base.sketch().matrix();
            if src.width() != self.width {
                return Err(WireError::Corrupt("patch width"));
            }
            let shared = self.rows.min(src.rows()) * self.width;
            hk.sketch_mut().matrix_mut().data_mut()[..shared]
                .copy_from_slice(&src.data()[..shared]);
        }
        let dst = hk.sketch_mut().matrix_mut().data_mut();
        for (slot, &diff) in dst.iter_mut().zip(&self.words) {
            if diff == 0 {
                continue;
            }
            let word = *slot ^ diff;
            let b = layout.unpack(word);
            if b.fp > fp_max {
                return Err(WireError::Corrupt("bucket fingerprint"));
            }
            if b.count > counter_max {
                return Err(WireError::Corrupt("bucket counter"));
            }
            if b.count == 0 && b.fp != 0 {
                return Err(WireError::Corrupt("empty bucket with fingerprint"));
            }
            *slot = word;
        }

        if self.store.len() > ring_cfg.k {
            return Err(WireError::Corrupt("store size"));
        }
        let mut entries = self.store.clone();
        entries.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (key, count) in entries {
            hk.offer(key, count);
        }
        Ok(hk)
    }
}

impl<K: FlowKey> WindowFrame<K> {
    /// Decodes a window frame produced by
    /// [`SlidingTopK::export_frame`](crate::sliding::SlidingTopK::export_frame)
    /// or
    /// [`SlidingTopK::export_delta`](crate::sliding::SlidingTopK::export_delta).
    ///
    /// Every header field is validated and every epoch record must pass
    /// its CRC before its payload is decoded; any truncation, corruption
    /// or inconsistency (a delta with ≠ 1 record, more live epochs than
    /// the window holds or than the rotation count allows, epochs that
    /// are not merge-compatible with each other) is rejected.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != FRAME_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != FRAME_VERSION && version != DIRTY_FRAME_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = match r.u8()? {
            0 => FrameKind::Full,
            1 => FrameKind::Delta,
            2 => FrameKind::Dirty,
            _ => return Err(WireError::Corrupt("frame kind")),
        };
        // Full/delta are v2; dirty is v3. A mismatched pairing never
        // came from an exporter here.
        let expected = match kind {
            FrameKind::Full | FrameKind::Delta => FRAME_VERSION,
            FrameKind::Dirty => DIRTY_FRAME_VERSION,
        };
        if version != expected {
            return Err(WireError::Corrupt("frame version/kind pairing"));
        }
        if r.u8()? as usize != K::ENCODED_LEN {
            return Err(WireError::KeyMismatch);
        }
        let switch_id = r.u64()?;
        let rotation = r.u64()?;
        let window = r.u16()? as usize;
        let live = r.u16()? as usize;
        let epoch_packets = r.u32()?;
        if window == 0 {
            return Err(WireError::Corrupt("window size"));
        }
        if live == 0 || live > window {
            return Err(WireError::Corrupt("live epoch count"));
        }
        match kind {
            FrameKind::Delta => {
                if live != 1 {
                    return Err(WireError::Corrupt("delta epoch count"));
                }
                // A delta carries a *closed* epoch, which takes at least
                // one rotation to exist.
                if rotation == 0 {
                    return Err(WireError::Corrupt("delta before first rotation"));
                }
            }
            FrameKind::Dirty => {
                if live != 1 {
                    return Err(WireError::Corrupt("dirty epoch count"));
                }
                // A dirty patch needs a *previously exported* closed
                // epoch as its baseline: the epoch closed by rotation
                // R - 1 must have existed, so R ≥ 2. And a W = 1 ring
                // never retains a closed epoch to diff or to apply to.
                if rotation < 2 {
                    return Err(WireError::Corrupt("dirty before second rotation"));
                }
                if window < 2 {
                    return Err(WireError::Corrupt("dirty window size"));
                }
            }
            FrameKind::Full => {
                // The ring grows by one epoch per rotation from one, so
                // more live epochs than `rotation + 1` are impossible.
                if live as u64 > rotation.saturating_add(1) {
                    return Err(WireError::Corrupt("more epochs than rotations"));
                }
            }
        }

        let mut epochs = Vec::with_capacity(if kind == FrameKind::Dirty { 0 } else { live });
        let mut patch = None;
        for idx in 0..live {
            let payload_len = r.u32()? as usize;
            let payload = r.take(payload_len)?;
            let crc = r.u32()?;
            if hk_common::crc::crc32(payload) != crc {
                return Err(WireError::BadCrc { epoch: idx });
            }
            if kind == FrameKind::Dirty {
                patch = Some(DirtyPatch::<K>::decode(payload)?);
            } else {
                epochs.push(ParallelTopK::<K>::from_wire(payload)?);
            }
        }
        if r.pos != data.len() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        // All epochs of one ring share a configuration — except the
        // array count, which Section III-F expansion can grow in one
        // epoch but not another. Reject frames whose epochs could not
        // have come from one switch.
        for pair in epochs.windows(2) {
            if !same_ring_config(pair[0].config(), pair[1].config()) {
                return Err(WireError::Corrupt("epochs from different rings"));
            }
        }
        Ok(Self {
            switch_id,
            rotation,
            window,
            epoch_packets,
            kind,
            epochs,
            patch,
        })
    }

    /// Converts a [`FrameKind::Full`] frame into a queryable window
    /// replica ([`SlidingTopK::from_epochs`]); `None` for deltas and
    /// dirty patches, which only make sense applied to an existing
    /// replica ([`SlidingTopK::commit_epoch`], [`DirtyPatch::apply`]).
    ///
    /// [`SlidingTopK::from_epochs`]: crate::sliding::SlidingTopK::from_epochs
    /// [`SlidingTopK::commit_epoch`]: crate::sliding::SlidingTopK::commit_epoch
    pub fn into_window(self) -> Option<crate::sliding::SlidingTopK<K>> {
        if self.kind != FrameKind::Full {
            return None;
        }
        // The ring config the replica opens *fresh* epochs from. Decoded
        // epoch configs carry each epoch's `arrays` as currently grown
        // (Section III-F), but a freshly recycled epoch always starts at
        // the base count — the minimum across the ring (a recycle drops
        // expansion rows, so any un-expanded epoch in the frame shows
        // the base).
        let cfg = self
            .epochs
            .iter()
            .map(|e| e.config())
            .min_by_key(|c| c.arrays)
            .expect("decode guarantees at least one epoch")
            .clone();
        Some(crate::sliding::SlidingTopK::from_epochs(
            cfg,
            self.window,
            self.rotation,
            self.epochs,
        ))
    }
}

// -- Checkpoint encode/restore hooks ------------------------------------
//
// The sharded engine's recovery plumbing rides the existing wire
// formats: a shard checkpoint IS a wire payload (sketch wire-v1 for
// steady sketches, a full wire-v2 window frame for sliding windows), so
// the bytes that leave the process as telemetry double as restart
// state. Both impls satisfy the `ShardCheckpoint` bit-exactness
// contract for everything the formats ship; the decay RNG position is
// transient by the format's design (the restored instance re-seeds from
// the config), which perturbs *future* decay draws only, never
// recorded counts.

impl<K: FlowKey> hk_common::ShardCheckpoint for ParallelTopK<K> {
    fn encode_checkpoint(&self) -> Vec<u8> {
        self.to_wire()
    }

    fn restore_checkpoint(bytes: &[u8]) -> Option<Self> {
        Self::from_wire(bytes).ok()
    }
}

/// Switch id stamped on checkpoint frames: checkpoints never leave the
/// engine, so the id only needs to be recognizable in a debugger.
const CHECKPOINT_SWITCH_ID: u64 = u64::from_le_bytes(*b"HKCKPT\0\0");

impl<K: FlowKey> hk_common::ShardCheckpoint for crate::sliding::SlidingTopK<K> {
    fn encode_checkpoint(&self) -> Vec<u8> {
        self.export_frame(CHECKPOINT_SWITCH_ID, 0)
    }

    fn restore_checkpoint(bytes: &[u8]) -> Option<Self> {
        WindowFrame::<K>::decode(bytes).ok()?.into_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(seed: u64) -> ParallelTopK<u64> {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(64)
            .k(8)
            .seed(seed)
            .build();
        let mut hk = ParallelTopK::new(cfg);
        let mut state = seed | 1;
        for _ in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 6
            } else {
                100 + state % 1000
            };
            hk.insert(&f);
        }
        hk
    }

    #[test]
    fn roundtrip_preserves_queries_and_topk() {
        let hk = populated(9);
        let wire = hk.to_wire();
        let back = ParallelTopK::<u64>::from_wire(&wire).unwrap();
        // The store's order among equal counts is unspecified (re-offer
        // reorders ties); compare as sorted sets.
        let canon = |mut v: Vec<(u64, u64)>| {
            v.sort_unstable();
            v
        };
        assert_eq!(canon(hk.top_k()), canon(back.top_k()));
        for f in 0..1200u64 {
            assert_eq!(hk.query(&f), back.query(&f), "flow {f}");
        }
        assert_eq!(hk.config(), back.config());
        assert_eq!(hk.memory_bytes(), back.memory_bytes());
    }

    #[test]
    fn decoded_sketch_keeps_working() {
        let hk = populated(4);
        let mut back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        let before = back.query(&0);
        for _ in 0..100 {
            back.insert(&0);
        }
        assert!(back.query(&0) >= before, "inserts after decode must work");
    }

    #[test]
    fn decoded_sketch_merges_with_original_lineage() {
        // The collector path: decode a shipped sketch and merge it with
        // another same-config instance.
        let a = populated(7);
        let wire = a.to_wire();
        let mut decoded = ParallelTopK::<u64>::from_wire(&wire).unwrap();
        let b = {
            let cfg = a.config().clone();
            let mut hk = ParallelTopK::<u64>::new(cfg);
            for _ in 0..500 {
                hk.insert(&424242);
            }
            hk
        };
        decoded.merge_from(&b).unwrap();
        // Sum-merge may shave a few counts off in bucket conflicts with
        // the decoded sketch's residents; never over-estimates.
        let est = decoded.query(&424242);
        assert!(est <= 500, "over-estimation after decode+merge");
        assert!(est >= 450, "merge lost the flow: {est}");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ParallelTopK::<u64>::from_wire(b"NOPE").unwrap_err(),
            WireError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let wire = populated(3).to_wire();
        for cut in 0..wire.len() {
            let err = ParallelTopK::<u64>::from_wire(&wire[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = populated(3).to_wire();
        wire.push(0);
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn key_width_mismatch_rejected() {
        let wire = populated(3).to_wire();
        assert_eq!(
            ParallelTopK::<u32>::from_wire(&wire).unwrap_err(),
            WireError::KeyMismatch
        );
    }

    #[test]
    fn corrupt_counter_rejected() {
        let hk = populated(3);
        let mut wire = hk.to_wire();
        // First bucket's count field: bytes after the fixed header.
        // Header: 4 magic + 1 ver + 1 keylen + 2 arrays + 4 width + 4 k
        // + 1 fp + 1 ctr + 8 seed + 9 decay + 1 store + 1 expansion = 37.
        let count_off = 37 + 4;
        wire[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt(_)
        ));
    }

    #[test]
    fn oversized_field_widths_rejected_not_panicking() {
        // fp_bits = 32 and ctr_bits = 40 each pass the individual range
        // checks but cannot share one packed bucket word; decoding must
        // return Corrupt, not panic in the config constructor.
        let mut wire = populated(3).to_wire();
        // Header: 4 magic + 1 ver + 1 keylen + 2 arrays + 4 width + 4 k.
        wire[16] = 32; // fp_bits
        wire[17] = 40; // ctr_bits
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt("field widths")
        );
    }

    #[test]
    fn version_checked() {
        let mut wire = populated(3).to_wire();
        wire[4] = 9;
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::BadVersion(9)
        );
    }

    #[test]
    fn expansion_policy_survives_roundtrip() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(8)
            .k(4)
            .seed(1)
            .expansion(ExpansionPolicy {
                large_counter: 77,
                blocked_threshold: 99,
                max_arrays: 5,
            })
            .build();
        let hk = ParallelTopK::<u64>::new(cfg);
        let back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        assert_eq!(back.config().expansion, hk.config().expansion);
    }

    fn populated_window(seed: u64, window: usize, rotations: usize) -> crate::SlidingTopK<u64> {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(64)
            .k(8)
            .seed(seed)
            .build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, window);
        let mut state = seed | 1;
        for r in 0..=rotations as u64 {
            for _ in 0..4000u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let f = if state.is_multiple_of(3) {
                    r * 10 + state % 6
                } else {
                    1000 + state % 500
                };
                win.insert(&f);
            }
            if r < rotations as u64 {
                win.rotate();
            }
        }
        win
    }

    /// Replica-vs-original equality down to the bucket words: every
    /// epoch's matrix and store must match, not just the query surface.
    fn assert_windows_bit_equal(a: &crate::SlidingTopK<u64>, b: &crate::SlidingTopK<u64>) {
        assert_eq!(a.window(), b.window());
        assert_eq!(a.rotations(), b.rotations());
        assert_eq!(a.live_epochs(), b.live_epochs());
        let canon = |mut v: Vec<(u64, u64)>| {
            v.sort_unstable();
            v
        };
        for (ea, eb) in a.epoch_iter().zip(b.epoch_iter()) {
            // Decoded configs carry each epoch's *current* array count
            // (v1 semantics: growth survives the round trip) while the
            // local config keeps the construction base; ring identity
            // ignores that field, the sketch-level count must agree.
            assert!(same_ring_config(ea.config(), eb.config()));
            assert_eq!(ea.sketch().arrays(), eb.sketch().arrays());
            for j in 0..ea.sketch().arrays() {
                for i in 0..ea.sketch().width() {
                    assert_eq!(
                        ea.sketch().bucket(j, i),
                        eb.sketch().bucket(j, i),
                        "({j},{i})"
                    );
                }
            }
            assert_eq!(canon(ea.top_k()), canon(eb.top_k()));
        }
        for f in 0..1600u64 {
            assert_eq!(a.query(&f), b.query(&f), "flow {f}");
        }
        assert_eq!(canon(a.top_k()), canon(b.top_k()));
    }

    #[test]
    fn full_frame_roundtrips_bit_exact() {
        let win = populated_window(5, 3, 5);
        let bytes = win.export_frame(42, 4000);
        let frame = WindowFrame::<u64>::decode(&bytes).unwrap();
        assert_eq!(frame.switch_id, 42);
        assert_eq!(frame.rotation, 5);
        assert_eq!(frame.window, 3);
        assert_eq!(frame.epoch_packets, 4000);
        assert_eq!(frame.kind, FrameKind::Full);
        assert_eq!(frame.epochs.len(), 3);
        let replica = frame.into_window().unwrap();
        assert_windows_bit_equal(&win, &replica);
    }

    #[test]
    fn full_frame_during_ring_fill() {
        // Fewer live epochs than the window: the frame carries exactly
        // the live ones and the replica keeps growing correctly.
        let win = populated_window(9, 4, 1);
        assert_eq!(win.live_epochs(), 2);
        let frame = WindowFrame::<u64>::decode(&win.export_frame(1, 100)).unwrap();
        assert_eq!(frame.epochs.len(), 2);
        let mut replica = frame.into_window().unwrap();
        assert_windows_bit_equal(&win, &replica);
        replica.rotate();
        assert_eq!(replica.live_epochs(), 3);
    }

    #[test]
    fn delta_frame_carries_newest_closed_epoch() {
        let win = populated_window(7, 3, 4);
        let bytes = win
            .export_delta(3, 4000)
            .expect("rotated window has a closed epoch");
        let frame = WindowFrame::<u64>::decode(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Delta);
        assert_eq!(frame.rotation, 4);
        assert_eq!(frame.epochs.len(), 1);
        // The carried epoch is the one just behind the accumulating
        // newest.
        let closed = win.epoch_iter().rev().nth(1).unwrap();
        for j in 0..closed.sketch().arrays() {
            for i in 0..closed.sketch().width() {
                assert_eq!(
                    frame.epochs[0].sketch().bucket(j, i),
                    closed.sketch().bucket(j, i)
                );
            }
        }
        // Deltas do not convert to standalone windows.
        assert!(frame.into_window().is_none());
        // Cost check: a delta is roughly one epoch, not W of them.
        let full = win.export_frame(3, 4000);
        assert!(
            bytes.len() * 2 < full.len(),
            "delta {} vs full {} bytes",
            bytes.len(),
            full.len()
        );
    }

    #[test]
    fn unrotated_window_has_no_delta() {
        let cfg = HkConfig::builder().width(32).k(4).seed(1).build();
        let win = crate::SlidingTopK::<u64>::new(cfg, 3);
        assert!(win.export_delta(0, 10).is_none());
        // But a full frame works from the very start.
        let frame = WindowFrame::<u64>::decode(&win.export_frame(0, 10)).unwrap();
        assert_eq!(frame.epochs.len(), 1);
        assert_eq!(frame.rotation, 0);
    }

    #[test]
    fn expansion_grown_epochs_roundtrip_in_one_frame() {
        // Section III-F expansion grows one epoch's array count while
        // fresher (recycled) epochs stay at the base: the frame's
        // epochs legitimately disagree on `arrays`, and both the
        // decoder and the collector must accept that as one ring.
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(2)
            .k(2)
            .seed(9)
            .expansion(ExpansionPolicy {
                large_counter: 30,
                blocked_threshold: 40,
                max_arrays: 6,
            })
            .build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        // First period: all-distinct mice — contested buckets stay
        // small, no expansion, so this epoch keeps the base arrays.
        win.insert_batch(&(0..2000u64).map(|i| 10_000 + i).collect::<Vec<_>>());
        win.rotate();
        // Second period: fill both tiny arrays with giants, then a late
        // elephant hammers until Section III-F expands the epoch (same
        // recipe as the parallel-variant expansion test).
        let mut giants: Vec<u64> = Vec::new();
        for f in 0..4u64 {
            giants.extend(std::iter::repeat_n(f, 2000));
        }
        giants.extend(std::iter::repeat_n(999u64, 3000));
        win.insert_batch(&giants);
        let arrays: Vec<usize> = win.epoch_iter().map(|e| e.sketch().arrays()).collect();
        assert!(
            arrays.iter().any(|&a| a > 2),
            "expansion precondition: {arrays:?}"
        );
        assert!(
            arrays.contains(&2),
            "base-arrays epoch precondition: {arrays:?}"
        );

        // The frame its own decoder must accept.
        let frame = WindowFrame::<u64>::decode(&win.export_frame(3, 4000)).unwrap();
        let replica = frame.into_window().unwrap();
        assert_windows_bit_equal(&win, &replica);
        // Fresh replica epochs open at the base array count, like the
        // switch's own recycled epochs.
        assert_eq!(replica.config().arrays, 2);

        // The collector path: snapshot, then a delta carrying an
        // expanded closed epoch, no Mismatch anywhere.
        use crate::collector::{AggregationRule, Collector};
        let mut coll = Collector::<u64>::new(4, AggregationRule::Sum);
        coll.submit_window_frame(&win.export_frame(3, 4000))
            .unwrap();
        win.rotate();
        coll.submit_window_frame(&win.export_delta(3, 4000).unwrap())
            .unwrap();
        let replica = coll.switch_window(3).unwrap();
        assert_eq!(replica.rotations(), win.rotations());
        for f in 0..10u64 {
            assert_eq!(replica.query(&f), win.query(&f), "flow {f}");
        }
    }

    #[test]
    fn export_delta_option_contract_pins_fallback_precedent() {
        // The documented precedent the dirty exporter builds on: the
        // delta exporter signals "no closed epoch" through its Option,
        // and the caller downgrades to a full frame. Pinned so a future
        // change to eager/panicking behavior fails loudly — export_dirty
        // inherits exactly this contract.
        let cfg = HkConfig::builder().width(32).k(4).seed(1).build();
        // Before the first rotation: no closed epoch.
        let mut win = crate::SlidingTopK::<u64>::new(cfg.clone(), 3);
        win.insert_batch(&[7u64; 100]);
        assert!(win.export_delta(0, 10).is_none());
        assert!(win.export_dirty(0, 10).is_none(), "same rule for dirty");
        // After one rotation: a closed epoch exists, the delta ships.
        win.rotate();
        assert!(win.export_delta(0, 10).is_some());
        // A W = 1 window never retains a closed epoch: None forever.
        let mut one = crate::SlidingTopK::<u64>::new(cfg, 1);
        for _ in 0..4 {
            one.insert_batch(&[7u64; 50]);
            one.rotate();
            assert!(one.export_delta(0, 10).is_none());
            assert!(one.export_dirty(0, 10).is_none(), "same rule for dirty");
        }
    }

    /// Feeds a period of traffic and rotates, like the exporter loop of
    /// a deployment: insert → rotate → export. Heavy flows carry
    /// distinct weights so the window top-k boundary never lands inside
    /// a tie (tie order among equal counts is unspecified and may
    /// differ between a switch and its replica); the mouse tail is
    /// rotation-salted so successive epochs genuinely differ.
    fn feed_and_rotate(win: &mut crate::SlidingTopK<u64>, seed: u64, r: u64) {
        let mut batch = Vec::with_capacity(4000);
        for f in 0..20u64 {
            batch.extend(std::iter::repeat_n(f, 50 + 30 * f as usize));
        }
        let mut state = seed | 1;
        for _ in 0..500u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            batch.push(10_000 + r * 1_000 + state % 400);
        }
        win.insert_batch(&batch);
        win.rotate();
    }

    #[test]
    fn export_dirty_primes_then_ships_patches() {
        let cfg = HkConfig::builder().arrays(2).width(64).k(8).seed(5).build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        feed_and_rotate(&mut win, 5, 0);
        // First call after the first rotation: a closed epoch exists
        // but no shadow does — primes and declines.
        assert!(win.export_dirty(9, 3000).is_none());
        feed_and_rotate(&mut win, 6, 1);
        let bytes = win.export_dirty(9, 3000).expect("shadow is fresh");
        let frame = WindowFrame::<u64>::decode(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Dirty);
        assert_eq!(frame.switch_id, 9);
        assert_eq!(frame.rotation, 2);
        assert!(frame.epochs.is_empty());
        assert!(frame.patch.is_some());
        assert!(frame.into_window().is_none(), "patches need a replica");
    }

    #[test]
    fn export_dirty_declines_after_skipped_rotation() {
        let cfg = HkConfig::builder().width(64).k(4).seed(3).build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        feed_and_rotate(&mut win, 3, 0);
        assert!(win.export_dirty(0, 3000).is_none()); // primes
        feed_and_rotate(&mut win, 4, 1);
        feed_and_rotate(&mut win, 5, 2); // rotation 2 never exported
                                         // The shadow snapshots rotation 1's closed epoch, but the
                                         // rotation counter is 3: a patch against it would skip an
                                         // epoch. Decline and re-prime instead.
        assert!(win.export_dirty(0, 3000).is_none());
        feed_and_rotate(&mut win, 6, 3);
        assert!(win.export_dirty(0, 3000).is_some(), "re-primed shadow");
    }

    /// Drives one switch and a collector through `periods` of dirty
    /// export with delta/full fallback, asserting bit-exactness after
    /// every applied frame. Returns (win, dirty_frames_shipped).
    fn run_dirty_stream(
        coll: &mut crate::collector::Collector<u64>,
        switch: u64,
        window: usize,
        periods: u64,
    ) -> (crate::SlidingTopK<u64>, usize) {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(64)
            .k(8)
            .seed(switch + 1)
            .build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, window);
        coll.submit_window_frame(&win.export_frame(switch, 3000))
            .unwrap();
        let mut dirty = 0usize;
        for r in 0..periods {
            feed_and_rotate(&mut win, switch * 100 + r, r);
            let bytes = match win.export_dirty(switch, 3000) {
                Some(b) => {
                    dirty += 1;
                    b
                }
                None => win
                    .export_delta(switch, 3000)
                    .unwrap_or_else(|| win.export_frame(switch, 3000)),
            };
            coll.submit_window_frame(&bytes).unwrap();
            assert_windows_bit_equal(&win, coll.switch_window(switch).unwrap());
        }
        (win, dirty)
    }

    #[test]
    fn dirty_stream_reassembles_bit_exact() {
        use crate::collector::{AggregationRule, Collector};
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let (_, dirty) = run_dirty_stream(&mut coll, 2, 3, 8);
        assert!(coll.resync_needed().is_empty());
        // Rotation 1 falls back to a delta (shadow just primed); every
        // later rotation must ship dirty.
        assert_eq!(dirty, 7);
    }

    #[test]
    fn duplicate_dirty_frames_are_idempotent() {
        use crate::collector::{AggregationRule, Collector, WindowSubmit};
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let (mut win, _) = run_dirty_stream(&mut coll, 1, 3, 3);
        feed_and_rotate(&mut win, 900, 3);
        let bytes = win.export_dirty(1, 3000).expect("steady state is dirty");
        assert_eq!(
            coll.submit_window_frame(&bytes).unwrap(),
            WindowSubmit::Applied
        );
        for _ in 0..3 {
            assert_eq!(
                coll.submit_window_frame(&bytes).unwrap(),
                WindowSubmit::Duplicate
            );
        }
        assert_windows_bit_equal(&win, coll.switch_window(1).unwrap());
    }

    #[test]
    fn reordered_dirty_patches_heal_through_pending_buffer() {
        use crate::collector::{AggregationRule, Collector, WindowSubmit};
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let (mut win, _) = run_dirty_stream(&mut coll, 4, 3, 3);
        // Export two consecutive dirty frames without submitting…
        feed_and_rotate(&mut win, 41, 3);
        let first = win.export_dirty(4, 3000).unwrap();
        feed_and_rotate(&mut win, 42, 4);
        let second = win.export_dirty(4, 3000).unwrap();
        // …then deliver them swapped: the early patch is buffered, the
        // late one applies and the drain reconstructs the buffered
        // patch against the baseline it was encoded from.
        assert_eq!(
            coll.submit_window_frame(&second).unwrap(),
            WindowSubmit::ResyncRequested
        );
        assert_eq!(coll.resync_needed(), vec![4]);
        assert_eq!(
            coll.submit_window_frame(&first).unwrap(),
            WindowSubmit::Applied
        );
        assert!(coll.resync_needed().is_empty());
        assert_windows_bit_equal(&win, coll.switch_window(4).unwrap());
    }

    #[test]
    fn dirty_gap_heals_with_snapshot() {
        use crate::collector::{AggregationRule, Collector, WindowSubmit};
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let (mut win, _) = run_dirty_stream(&mut coll, 6, 3, 3);
        // Lose one dirty frame entirely, ship the next: gap.
        feed_and_rotate(&mut win, 61, 3);
        let _lost = win.export_dirty(6, 3000).unwrap();
        feed_and_rotate(&mut win, 62, 4);
        let ahead = win.export_dirty(6, 3000).unwrap();
        assert_eq!(
            coll.submit_window_frame(&ahead).unwrap(),
            WindowSubmit::ResyncRequested
        );
        assert_eq!(coll.resync_needed(), vec![6]);
        // The resync snapshot re-anchors; the buffered stale patch is
        // discarded by the drain.
        coll.submit_window_frame(&win.export_frame(6, 3000))
            .unwrap();
        assert!(coll.resync_needed().is_empty());
        assert_windows_bit_equal(&win, coll.switch_window(6).unwrap());
        // And the stream continues dirty afterwards: the exporter
        // shadow never desynced.
        feed_and_rotate(&mut win, 63, 5);
        let next = win.export_dirty(6, 3000).expect("stream stays dirty");
        assert_eq!(
            coll.submit_window_frame(&next).unwrap(),
            WindowSubmit::Applied
        );
        assert_windows_bit_equal(&win, coll.switch_window(6).unwrap());
    }

    #[test]
    fn dirty_before_snapshot_requests_resync() {
        use crate::collector::WindowSubmitError;
        use crate::collector::{AggregationRule, Collector};
        let mut coll = Collector::<u64>::new(8, AggregationRule::Sum);
        let cfg = HkConfig::builder().width(64).k(4).seed(2).build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        feed_and_rotate(&mut win, 1, 0);
        assert!(win.export_dirty(5, 3000).is_none());
        feed_and_rotate(&mut win, 2, 1);
        let bytes = win.export_dirty(5, 3000).unwrap();
        assert_eq!(
            coll.submit_window_frame(&bytes).unwrap_err(),
            WindowSubmitError::NoSnapshot { switch: 5 }
        );
        assert_eq!(coll.resync_needed(), vec![5]);
    }

    #[test]
    fn dirty_frame_is_smaller_than_delta_on_stable_traffic() {
        // The point of the format: when few buckets change between
        // rotations, the patch collapses while the delta stays O(sketch).
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(4096)
            .k(8)
            .seed(7)
            .build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 4);
        // Few distinct flows against a wide sketch: most buckets stay
        // empty, so successive closed epochs differ in few words.
        let mut dirty = Vec::new();
        for r in 0..3u64 {
            win.insert_batch(&(0..2000u64).map(|i| i % 40).collect::<Vec<_>>());
            win.rotate();
            match win.export_dirty(0, 2000) {
                Some(b) => dirty = b,
                None => assert_eq!(r, 0, "only the priming call declines"),
            }
        }
        let delta = win.export_delta(0, 2000).unwrap();
        assert!(
            dirty.len() * 4 < delta.len(),
            "dirty {} vs delta {} bytes",
            dirty.len(),
            delta.len()
        );
    }

    #[test]
    fn dirty_header_and_payload_corruption_rejected() {
        let cfg = HkConfig::builder().width(64).k(4).seed(8).build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        feed_and_rotate(&mut win, 1, 0);
        assert!(win.export_dirty(0, 3000).is_none());
        feed_and_rotate(&mut win, 2, 1);
        let bytes = win.export_dirty(0, 3000).unwrap();
        assert!(WindowFrame::<u64>::decode(&bytes).is_ok());
        // Version byte: a dirty kind under v2 is a pairing violation.
        let mut v = bytes.clone();
        v[4] = 2;
        assert_eq!(
            WindowFrame::<u64>::decode(&v).unwrap_err(),
            WireError::Corrupt("frame version/kind pairing")
        );
        // Kind byte: a delta kind under v3 likewise.
        let mut k = bytes.clone();
        k[5] = 1;
        assert_eq!(
            WindowFrame::<u64>::decode(&k).unwrap_err(),
            WireError::Corrupt("frame version/kind pairing")
        );
        // Rotation counter forced below 2: dirty needs a baseline.
        let mut r = bytes.clone();
        r[15..23].copy_from_slice(&1u64.to_le_bytes());
        assert_eq!(
            WindowFrame::<u64>::decode(&r).unwrap_err(),
            WireError::Corrupt("dirty before second rotation")
        );
        // Every truncation rejected.
        for cut in 0..bytes.len() {
            assert!(
                WindowFrame::<u64>::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Payload bytes are CRC-protected.
        let payload_at = 31 + 4;
        let mut flipped = bytes.clone();
        flipped[payload_at + 2] ^= 0x20;
        assert!(matches!(
            WindowFrame::<u64>::decode(&flipped).unwrap_err(),
            WireError::BadCrc { .. }
        ));
    }

    #[test]
    fn dirty_patch_apply_rejects_empty_bucket_with_fingerprint() {
        // XOR of two field-valid packed words is always field-valid, so
        // the one reconstruction error an honest-geometry patch can
        // reach is a zero counter under a nonzero fingerprint. A patch
        // is internally consistent on its own — only apply-time
        // validation against the actual baseline can catch this.
        let cfg = HkConfig::builder().width(64).k(4).seed(1).build();
        let mut words = vec![0u64; 64];
        words[3] = 1u64 << 32; // fp = 1, count = 0 against a zero base
        let patch = DirtyPatch::<u64> {
            rows: 1,
            width: 64,
            words,
            store: Vec::new(),
        };
        assert_eq!(
            patch.apply(None, &cfg).unwrap_err(),
            WireError::Corrupt("empty bucket with fingerprint")
        );
    }

    #[test]
    fn malicious_dirty_frame_rejected_at_apply_and_flags_resync() {
        use crate::collector::{AggregationRule, Collector, WindowSubmitError};
        let cfg = HkConfig::builder().width(64).k(4).seed(8).build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        feed_and_rotate(&mut win, 1, 0);
        let mut coll = Collector::<u64>::new(4, AggregationRule::Sum);
        coll.submit_window_frame(&win.export_frame(2, 3000))
            .unwrap();
        // Craft a well-formed v3 frame for rotation 2 whose single diff
        // reconstructs an empty bucket carrying a fingerprint when
        // XOR-ed onto the replica's true baseline.
        let baseline = win.epoch_iter().rev().nth(1).unwrap().sketch();
        let b = baseline.bucket(0, 0);
        let base_word = (u64::from(b.fp) << 32) | b.count;
        let evil_diff = base_word ^ (1u64 << 32);
        assert_ne!(evil_diff, 0, "diff must survive the zero-diff check");
        let mut out = Vec::new();
        encode_frame_header(&mut out, FrameKind::Dirty, 8, 2, 2, 3, 1, 3000);
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        let payload_at = out.len();
        out.extend_from_slice(DIRTY_MAGIC);
        hk_common::varint::write_u64(&mut out, 1); // rows
        hk_common::varint::write_u64(&mut out, 64); // width
        hk_common::varint::write_bitmap_rle(&mut out, &[1u64]); // bucket 0
        hk_common::varint::write_u64(&mut out, evil_diff);
        hk_common::varint::write_u64(&mut out, 0); // empty store
        let payload_len = out.len() - payload_at;
        out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let crc = hk_common::crc::crc32(&out[payload_at..]);
        out.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            coll.submit_window_frame(&out).unwrap_err(),
            WindowSubmitError::Wire(WireError::Corrupt("empty bucket with fingerprint"))
        );
        // The replica kept its pre-frame state and the switch is
        // flagged: the rotation was seen but never applied.
        assert_eq!(coll.switch_window(2).unwrap().rotations(), 1);
        assert_eq!(coll.resync_needed(), vec![2]);
        // A snapshot heals, as after any loss.
        feed_and_rotate(&mut win, 2, 1);
        coll.submit_window_frame(&win.export_frame(2, 3000))
            .unwrap();
        assert!(coll.resync_needed().is_empty());
        assert_windows_bit_equal(&win, coll.switch_window(2).unwrap());
    }

    #[test]
    fn dirty_patch_expansion_grows_rows_against_empty_baseline() {
        // Section III-F expansion between two exports: the new closed
        // epoch has more rows than the shadow; the extra rows are
        // diffed — and reconstructed — against an all-empty baseline.
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(2)
            .k(2)
            .seed(9)
            .expansion(ExpansionPolicy {
                large_counter: 30,
                blocked_threshold: 40,
                max_arrays: 6,
            })
            .build();
        use crate::collector::{AggregationRule, Collector, WindowSubmit};
        let mut coll = Collector::<u64>::new(4, AggregationRule::Sum);
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        // Quiet first period; snapshot + prime.
        win.insert_batch(&(0..200u64).map(|i| 10_000 + i).collect::<Vec<_>>());
        win.rotate();
        coll.submit_window_frame(&win.export_frame(3, 2000))
            .unwrap();
        assert!(win.export_dirty(3, 2000).is_none());
        // Second period: force expansion, then close it.
        let mut giants: Vec<u64> = Vec::new();
        for f in 0..4u64 {
            giants.extend(std::iter::repeat_n(f, 2000));
        }
        giants.extend(std::iter::repeat_n(999u64, 3000));
        win.insert_batch(&giants);
        win.rotate();
        let arrays: Vec<usize> = win.epoch_iter().map(|e| e.sketch().arrays()).collect();
        assert!(arrays.iter().any(|&a| a > 2), "expansion precondition");
        let bytes = win.export_dirty(3, 2000).expect("fresh shadow");
        let frame = WindowFrame::<u64>::decode(&bytes).unwrap();
        assert!(frame.patch.as_ref().unwrap().rows() > 2);
        assert_eq!(
            coll.submit_window_frame(&bytes).unwrap(),
            WindowSubmit::Applied
        );
        assert_windows_bit_equal(&win, coll.switch_window(3).unwrap());
    }

    #[test]
    fn frame_key_width_checked() {
        let win = populated_window(3, 2, 2);
        let bytes = win.export_frame(0, 100);
        assert_eq!(
            WindowFrame::<u32>::decode(&bytes).unwrap_err(),
            WireError::KeyMismatch
        );
    }

    #[test]
    fn grown_arrays_survive_roundtrip() {
        // Force Section III-F growth, then round-trip: the extra array
        // and its contents must survive.
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(2)
            .k(2)
            .seed(9)
            .expansion(ExpansionPolicy {
                large_counter: 50,
                blocked_threshold: 100,
                max_arrays: 6,
            })
            .build();
        let mut hk = ParallelTopK::<u64>::new(cfg);
        for f in 0..4u64 {
            for _ in 0..2000 {
                hk.insert(&f);
            }
        }
        for _ in 0..3000 {
            hk.insert(&999);
        }
        assert!(hk.sketch().expansions() > 0, "growth precondition");
        let back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        assert_eq!(back.sketch().arrays(), hk.sketch().arrays());
        for f in [0u64, 1, 2, 3, 999] {
            assert_eq!(back.query(&f), hk.query(&f));
        }
    }
}
