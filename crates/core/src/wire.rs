//! Wire serialization: shipping a HeavyKeeper to the collector.
//!
//! Footnote 2's deployment has switches *send their sketches* to a
//! collector every period. [`ParallelTopK::to_wire`] /
//! [`ParallelTopK::from_wire`] implement that hop: a compact,
//! self-describing binary encoding of the configuration, the bucket
//! matrix, and the top-k store, suitable for a UDP report or an RPC
//! payload.
//!
//! ```text
//! magic "HKSK" | version u8 | key_len u8 |
//! config: arrays u16 | width u32 | k u32 | fp_bits u8 | ctr_bits u8 |
//!         seed u64 | decay tag u8 + param f64 | store u8 |
//!         expansion flag u8 [+ large u64 + blocked u64 + max u16]
//! buckets: arrays × width × (fp u32 | count u64)
//! store:   n u32, then n × (key bytes | count u64)
//! ```
//!
//! The decoded instance queries and merges identically to the original
//! (bucket state and store entries are bit-preserved). Two pieces of
//! *transient* state are intentionally not shipped: the decay RNG
//! position (the decoded sketch re-seeds from the config, which affects
//! reproducibility of *future* inserts, never correctness) and the
//! Section III-F blocked counter (restarts at 0; arrays already added
//! by expansion are preserved because the encoded config carries the
//! *current* array count).

use crate::config::{ExpansionPolicy, HkConfig, StoreKind};
use crate::decay::DecayFn;
use crate::parallel::ParallelTopK;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

const MAGIC: &[u8; 4] = b"HKSK";
const VERSION: u8 = 1;

/// Why a wire payload could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload does not start with the `HKSK` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Payload ends before a required field.
    Truncated,
    /// A field holds an impossible value (named for diagnostics).
    Corrupt(&'static str),
    /// The payload's key width does not match the requested key type,
    /// or the key type does not implement `from_key_bytes`.
    KeyMismatch,
    /// An epoch payload's CRC-32 does not match its bytes (wire v2
    /// window frames checksum every epoch record).
    BadCrc {
        /// Index of the failing epoch record within the frame.
        epoch: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a HKSK payload"),
            Self::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            Self::Truncated => write!(f, "wire payload truncated"),
            Self::Corrupt(what) => write!(f, "corrupt field: {what}"),
            Self::KeyMismatch => write!(f, "key type does not match payload"),
            Self::BadCrc { epoch } => write!(f, "epoch record {epoch} fails its CRC"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian cursor over a wire payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_decay(out: &mut Vec<u8>, decay: DecayFn) {
    let (tag, param) = match decay {
        DecayFn::Exponential { b } => (0u8, b),
        DecayFn::Polynomial { b } => (1, b),
        DecayFn::Sigmoid { lambda } => (2, lambda),
    };
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
}

fn decode_decay(r: &mut Reader<'_>) -> Result<DecayFn, WireError> {
    let tag = r.u8()?;
    let param = r.f64()?;
    if !param.is_finite() {
        return Err(WireError::Corrupt("decay parameter"));
    }
    match tag {
        0 if param > 1.0 => Ok(DecayFn::Exponential { b: param }),
        1 if param > 0.0 => Ok(DecayFn::Polynomial { b: param }),
        2 if param > 0.0 => Ok(DecayFn::Sigmoid { lambda: param }),
        0..=2 => Err(WireError::Corrupt("decay parameter range")),
        _ => Err(WireError::Corrupt("decay tag")),
    }
}

impl<K: FlowKey> ParallelTopK<K> {
    /// Serializes this instance for shipping to a collector.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.wire_into(&mut out);
        out
    }

    /// [`ParallelTopK::to_wire`], appended to an existing buffer — the
    /// windowed frame encoder streams every epoch payload straight into
    /// the frame through this, with no intermediate per-epoch `Vec`.
    pub(crate) fn wire_into(&self, out: &mut Vec<u8>) {
        let sketch = self.sketch();
        let cfg = self.config();
        let top = self.top_k();
        out.reserve(32 + sketch.arrays() * sketch.width() * 12 + top.len() * (K::ENCODED_LEN + 8));
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(K::ENCODED_LEN as u8);

        // Config, with `arrays` reflecting the *current* matrix so that
        // Section III-F growth survives the round trip.
        out.extend_from_slice(&(sketch.arrays() as u16).to_le_bytes());
        out.extend_from_slice(&(sketch.width() as u32).to_le_bytes());
        out.extend_from_slice(&(cfg.k as u32).to_le_bytes());
        out.push(cfg.fingerprint_bits as u8);
        out.push(cfg.counter_bits as u8);
        out.extend_from_slice(&cfg.seed.to_le_bytes());
        encode_decay(out, cfg.decay);
        out.push(match cfg.store {
            StoreKind::StreamSummary => 0,
            StoreKind::MinHeap => 1,
        });
        match cfg.expansion {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.large_counter.to_le_bytes());
                out.extend_from_slice(&p.blocked_threshold.to_le_bytes());
                out.extend_from_slice(&(p.max_arrays as u16).to_le_bytes());
            }
        }

        // Bucket matrix, streamed row by row over the packed row views.
        for j in 0..sketch.arrays() {
            let layout = sketch.matrix().layout();
            for &word in sketch.matrix().row(j) {
                let b = layout.unpack(word);
                out.extend_from_slice(&b.fp.to_le_bytes());
                out.extend_from_slice(&b.count.to_le_bytes());
            }
        }

        // Top-k store.
        out.extend_from_slice(&(top.len() as u32).to_le_bytes());
        for (key, count) in &top {
            out.extend_from_slice(key.key_bytes().as_slice());
            out.extend_from_slice(&count.to_le_bytes());
        }
    }

    /// Reconstructs an instance from [`ParallelTopK::to_wire`] bytes.
    ///
    /// The key type `K` must match the one encoded (width-checked) and
    /// must implement [`FlowKey::from_key_bytes`].
    pub fn from_wire(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        if r.u8()? as usize != K::ENCODED_LEN {
            return Err(WireError::KeyMismatch);
        }

        let arrays = r.u16()? as usize;
        let width = r.u32()? as usize;
        let k = r.u32()? as usize;
        let fp_bits = r.u8()? as u32;
        let ctr_bits = r.u8()? as u32;
        let seed = r.u64()?;
        let decay = decode_decay(&mut r)?;
        let store = match r.u8()? {
            0 => StoreKind::StreamSummary,
            1 => StoreKind::MinHeap,
            _ => return Err(WireError::Corrupt("store kind")),
        };
        let expansion = match r.u8()? {
            0 => None,
            1 => Some(ExpansionPolicy {
                large_counter: r.u64()?,
                blocked_threshold: r.u64()?,
                max_arrays: r.u16()? as usize,
            }),
            _ => return Err(WireError::Corrupt("expansion flag")),
        };
        if arrays == 0 || arrays > crate::sketch::MAX_ARRAYS {
            return Err(WireError::Corrupt("array count"));
        }
        if width == 0 || k == 0 {
            return Err(WireError::Corrupt("width/k"));
        }
        if fp_bits == 0 || fp_bits > 32 || ctr_bits == 0 || ctr_bits >= 64 {
            return Err(WireError::Corrupt("field widths"));
        }
        if fp_bits + ctr_bits > 64 {
            // The packed bucket word cannot hold both fields; reject
            // instead of letting the config constructor panic.
            return Err(WireError::Corrupt("field widths"));
        }

        let mut builder = HkConfig::builder()
            .arrays(arrays)
            .width(width)
            .k(k)
            .fingerprint_bits(fp_bits)
            .counter_bits(ctr_bits)
            .seed(seed)
            .decay(decay)
            .store(store);
        if let Some(p) = expansion {
            builder = builder.expansion(p);
        }
        let mut hk = ParallelTopK::<K>::new(builder.build());

        // Bucket matrix.
        let counter_max = hk.sketch().counter_max();
        let fp_max = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };
        for j in 0..arrays {
            for i in 0..width {
                let mut cell = Reader {
                    data: r.take(12)?,
                    pos: 0,
                };
                let fp = cell.u32()?;
                let count = cell.u64()?;
                if fp > fp_max {
                    return Err(WireError::Corrupt("bucket fingerprint"));
                }
                if count > counter_max {
                    return Err(WireError::Corrupt("bucket counter"));
                }
                if count == 0 && fp != 0 {
                    return Err(WireError::Corrupt("empty bucket with fingerprint"));
                }
                hk.sketch_mut()
                    .set_bucket(j, i, crate::bucket::Bucket { fp, count });
            }
        }

        // Top-k store, re-offered largest-first so admissions succeed.
        let n = r.u32()? as usize;
        if n > k {
            return Err(WireError::Corrupt("store size"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let kb = r.take(K::ENCODED_LEN)?;
            let key = K::from_key_bytes(kb).ok_or(WireError::KeyMismatch)?;
            let count = r.u64()?;
            entries.push((key, count));
        }
        if r.pos != data.len() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        entries.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (key, count) in entries {
            if count == 0 {
                return Err(WireError::Corrupt("zero store count"));
            }
            hk.offer(key, count);
        }
        Ok(hk)
    }
}

// ---------------------------------------------------------------------
// Wire v2: the windowed telemetry frame (epoch-ring framing).
//
// A sliding-window deployment cannot ship its state as one v1 sketch:
// the measurement unit is a ring of W epoch sketches plus a rotation
// counter, and steady-state export should not pay O(W · sketch) per
// period when only one epoch changed. The v2 frame carries both shapes:
//
// ```text
// magic "HKWF" | version u8 (2) | kind u8 (0 full / 1 delta) | key_len u8 |
// switch_id u64 | rotation u64 | window u16 | live u16 | epoch_packets u32
// then `live` epoch records, oldest -> newest:
//   payload_len u32 | payload (one v1 "HKSK" sketch) | crc32 u32
// ```
//
// * **Full** frames carry every live epoch (the accumulating newest
//   included) — the initial snapshot and the resync path.
// * **Delta** frames carry exactly one record: the epoch that was
//   *closed* by rotation number `rotation` — the steady-state path,
//   O(one sketch) per period regardless of W.
//
// Every epoch record is CRC-32-checksummed independently, so one
// corrupted epoch is detected before any expensive decode. `rotation`
// orders frames: the collector applies delta R only on top of state at
// rotation R-1, treats R ≤ current as a duplicate (idempotent drop) and
// R > current+1 as a gap that flags the switch for resync.
// ---------------------------------------------------------------------

/// Magic prefix of a windowed telemetry frame.
const FRAME_MAGIC: &[u8; 4] = b"HKWF";
/// Wire version of the window frame format.
const FRAME_VERSION: u8 = 2;

/// Whether a window frame is a full snapshot or a single-epoch delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Every live epoch of the ring (snapshot / resync).
    Full,
    /// Only the epoch closed by `rotation` (steady-state export).
    Delta,
}

/// A decoded windowed telemetry frame: one switch's epoch-ring state
/// (or its newest closed epoch) plus the metadata the collector needs
/// to reassemble the ring.
#[derive(Debug, Clone)]
pub struct WindowFrame<K: FlowKey> {
    /// Which switch exported the frame (assigned by the deployment).
    pub switch_id: u64,
    /// The switch's rotation counter at export time. For a delta this
    /// is the rotation that closed the carried epoch.
    pub rotation: u64,
    /// The ring size `W` the switch runs.
    pub window: usize,
    /// The switch's per-epoch packet budget (periods are cut every this
    /// many packets); carried so artifacts are self-describing.
    pub epoch_packets: u32,
    /// Snapshot or delta.
    pub kind: FrameKind,
    /// The carried epochs, oldest first. `len == 1` for a delta; for a
    /// full frame the last entry is the accumulating newest epoch.
    pub epochs: Vec<ParallelTopK<K>>,
}

/// True when two configurations describe the *same ring* — equal in
/// every field except `arrays`, which Section III-F expansion grows
/// per-epoch at runtime (one window's epochs can legitimately hold
/// different array counts, and so can a replica and the delta that
/// advances it).
pub(crate) fn same_ring_config(a: &HkConfig, b: &HkConfig) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.arrays = 0;
    b.arrays = 0;
    a == b
}

/// Appends the shared frame header.
#[allow(clippy::too_many_arguments)]
fn encode_frame_header(
    out: &mut Vec<u8>,
    kind: FrameKind,
    key_len: usize,
    switch_id: u64,
    rotation: u64,
    window: usize,
    live: usize,
    epoch_packets: u32,
) {
    // The header carries these as u16; silent truncation would emit a
    // frame the decoder rejects (or, worse, one with a wrong ring
    // size). A >65535-epoch window is 65536 sketches of memory — far
    // past any sane deployment — so refuse loudly instead of encoding
    // garbage.
    assert!(
        window <= u16::MAX as usize && live <= u16::MAX as usize,
        "window frame fields exceed the wire format's u16 range ({window} epochs)"
    );
    out.extend_from_slice(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(match kind {
        FrameKind::Full => 0,
        FrameKind::Delta => 1,
    });
    out.push(key_len as u8);
    out.extend_from_slice(&switch_id.to_le_bytes());
    out.extend_from_slice(&rotation.to_le_bytes());
    out.extend_from_slice(&(window as u16).to_le_bytes());
    out.extend_from_slice(&(live as u16).to_le_bytes());
    out.extend_from_slice(&epoch_packets.to_le_bytes());
}

/// Appends one epoch record: length-prefixed v1 payload plus its CRC.
/// The payload is streamed straight into `out` (the epoch's packed row
/// views feed [`ParallelTopK::wire_into`]); the length is back-patched
/// and the CRC computed over the written range — no intermediate copy.
fn encode_epoch_record<K: FlowKey>(out: &mut Vec<u8>, epoch: &ParallelTopK<K>) {
    let len_at = out.len();
    out.extend_from_slice(&0u32.to_le_bytes()); // placeholder
    let payload_at = out.len();
    epoch.wire_into(out);
    let payload_len = out.len() - payload_at;
    out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    let crc = hk_common::crc::crc32(&out[payload_at..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

impl<K: FlowKey> crate::sliding::SlidingTopK<K> {
    /// Exports the whole ring as a [`FrameKind::Full`] window frame:
    /// every live epoch (the accumulating newest included), the
    /// rotation counter, and the per-epoch packet budget. This is the
    /// initial snapshot a delta stream starts from, and the resync
    /// payload after loss.
    pub fn export_frame(&self, switch_id: u64, epoch_packets: u32) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(64 + self.live_epochs() * 1024);
        encode_frame_header(
            &mut out,
            FrameKind::Full,
            K::ENCODED_LEN,
            switch_id,
            self.rotations(),
            self.window(),
            self.live_epochs(),
            epoch_packets,
        );
        for epoch in self.epoch_iter() {
            encode_epoch_record(&mut out, epoch);
        }
        out
    }

    /// Exports the newest *closed* epoch as a [`FrameKind::Delta`]
    /// frame — the steady-state export, O(one sketch) per rotation
    /// instead of the full frame's O(W · sketch).
    ///
    /// The carried epoch is the one closed by the latest
    /// [`rotate`](crate::sliding::SlidingTopK::rotate) (closed epochs
    /// are immutable, so the delta is valid any time before the next
    /// rotation). Returns `None` when no closed epoch is live — before
    /// the first rotation, and *always* for a `W = 1` window (its only
    /// slot is the accumulating epoch; rotation evicts the closed one
    /// immediately) — ship [`export_frame`] instead.
    ///
    /// [`export_frame`]: crate::sliding::SlidingTopK::export_frame
    pub fn export_delta(&self, switch_id: u64, epoch_packets: u32) -> Option<Vec<u8>> {
        // The newest closed epoch sits just behind the accumulating one.
        let closed = self.epoch_iter().rev().nth(1)?;
        let mut out = Vec::with_capacity(64 + 1024);
        encode_frame_header(
            &mut out,
            FrameKind::Delta,
            K::ENCODED_LEN,
            switch_id,
            self.rotations(),
            self.window(),
            1,
            epoch_packets,
        );
        encode_epoch_record(&mut out, closed);
        Some(out)
    }
}

impl<K: FlowKey> WindowFrame<K> {
    /// Decodes a window frame produced by
    /// [`SlidingTopK::export_frame`](crate::sliding::SlidingTopK::export_frame)
    /// or
    /// [`SlidingTopK::export_delta`](crate::sliding::SlidingTopK::export_delta).
    ///
    /// Every header field is validated and every epoch record must pass
    /// its CRC before its payload is decoded; any truncation, corruption
    /// or inconsistency (a delta with ≠ 1 record, more live epochs than
    /// the window holds or than the rotation count allows, epochs that
    /// are not merge-compatible with each other) is rejected.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != FRAME_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != FRAME_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = match r.u8()? {
            0 => FrameKind::Full,
            1 => FrameKind::Delta,
            _ => return Err(WireError::Corrupt("frame kind")),
        };
        if r.u8()? as usize != K::ENCODED_LEN {
            return Err(WireError::KeyMismatch);
        }
        let switch_id = r.u64()?;
        let rotation = r.u64()?;
        let window = r.u16()? as usize;
        let live = r.u16()? as usize;
        let epoch_packets = r.u32()?;
        if window == 0 {
            return Err(WireError::Corrupt("window size"));
        }
        if live == 0 || live > window {
            return Err(WireError::Corrupt("live epoch count"));
        }
        match kind {
            FrameKind::Delta => {
                if live != 1 {
                    return Err(WireError::Corrupt("delta epoch count"));
                }
                // A delta carries a *closed* epoch, which takes at least
                // one rotation to exist.
                if rotation == 0 {
                    return Err(WireError::Corrupt("delta before first rotation"));
                }
            }
            FrameKind::Full => {
                // The ring grows by one epoch per rotation from one, so
                // more live epochs than `rotation + 1` are impossible.
                if live as u64 > rotation.saturating_add(1) {
                    return Err(WireError::Corrupt("more epochs than rotations"));
                }
            }
        }

        let mut epochs = Vec::with_capacity(live);
        for idx in 0..live {
            let payload_len = r.u32()? as usize;
            let payload = r.take(payload_len)?;
            let crc = r.u32()?;
            if hk_common::crc::crc32(payload) != crc {
                return Err(WireError::BadCrc { epoch: idx });
            }
            epochs.push(ParallelTopK::<K>::from_wire(payload)?);
        }
        if r.pos != data.len() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        // All epochs of one ring share a configuration — except the
        // array count, which Section III-F expansion can grow in one
        // epoch but not another. Reject frames whose epochs could not
        // have come from one switch.
        for pair in epochs.windows(2) {
            if !same_ring_config(pair[0].config(), pair[1].config()) {
                return Err(WireError::Corrupt("epochs from different rings"));
            }
        }
        Ok(Self {
            switch_id,
            rotation,
            window,
            epoch_packets,
            kind,
            epochs,
        })
    }

    /// Converts a [`FrameKind::Full`] frame into a queryable window
    /// replica ([`SlidingTopK::from_epochs`]); `None` for deltas, which
    /// only make sense applied to an existing replica
    /// ([`SlidingTopK::commit_epoch`]).
    ///
    /// [`SlidingTopK::from_epochs`]: crate::sliding::SlidingTopK::from_epochs
    /// [`SlidingTopK::commit_epoch`]: crate::sliding::SlidingTopK::commit_epoch
    pub fn into_window(self) -> Option<crate::sliding::SlidingTopK<K>> {
        if self.kind != FrameKind::Full {
            return None;
        }
        // The ring config the replica opens *fresh* epochs from. Decoded
        // epoch configs carry each epoch's `arrays` as currently grown
        // (Section III-F), but a freshly recycled epoch always starts at
        // the base count — the minimum across the ring (a recycle drops
        // expansion rows, so any un-expanded epoch in the frame shows
        // the base).
        let cfg = self
            .epochs
            .iter()
            .map(|e| e.config())
            .min_by_key(|c| c.arrays)
            .expect("decode guarantees at least one epoch")
            .clone();
        Some(crate::sliding::SlidingTopK::from_epochs(
            cfg,
            self.window,
            self.rotation,
            self.epochs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(seed: u64) -> ParallelTopK<u64> {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(64)
            .k(8)
            .seed(seed)
            .build();
        let mut hk = ParallelTopK::new(cfg);
        let mut state = seed | 1;
        for _ in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 6
            } else {
                100 + state % 1000
            };
            hk.insert(&f);
        }
        hk
    }

    #[test]
    fn roundtrip_preserves_queries_and_topk() {
        let hk = populated(9);
        let wire = hk.to_wire();
        let back = ParallelTopK::<u64>::from_wire(&wire).unwrap();
        // The store's order among equal counts is unspecified (re-offer
        // reorders ties); compare as sorted sets.
        let canon = |mut v: Vec<(u64, u64)>| {
            v.sort_unstable();
            v
        };
        assert_eq!(canon(hk.top_k()), canon(back.top_k()));
        for f in 0..1200u64 {
            assert_eq!(hk.query(&f), back.query(&f), "flow {f}");
        }
        assert_eq!(hk.config(), back.config());
        assert_eq!(hk.memory_bytes(), back.memory_bytes());
    }

    #[test]
    fn decoded_sketch_keeps_working() {
        let hk = populated(4);
        let mut back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        let before = back.query(&0);
        for _ in 0..100 {
            back.insert(&0);
        }
        assert!(back.query(&0) >= before, "inserts after decode must work");
    }

    #[test]
    fn decoded_sketch_merges_with_original_lineage() {
        // The collector path: decode a shipped sketch and merge it with
        // another same-config instance.
        let a = populated(7);
        let wire = a.to_wire();
        let mut decoded = ParallelTopK::<u64>::from_wire(&wire).unwrap();
        let b = {
            let cfg = a.config().clone();
            let mut hk = ParallelTopK::<u64>::new(cfg);
            for _ in 0..500 {
                hk.insert(&424242);
            }
            hk
        };
        decoded.merge_from(&b).unwrap();
        // Sum-merge may shave a few counts off in bucket conflicts with
        // the decoded sketch's residents; never over-estimates.
        let est = decoded.query(&424242);
        assert!(est <= 500, "over-estimation after decode+merge");
        assert!(est >= 450, "merge lost the flow: {est}");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ParallelTopK::<u64>::from_wire(b"NOPE").unwrap_err(),
            WireError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let wire = populated(3).to_wire();
        for cut in 0..wire.len() {
            let err = ParallelTopK::<u64>::from_wire(&wire[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = populated(3).to_wire();
        wire.push(0);
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn key_width_mismatch_rejected() {
        let wire = populated(3).to_wire();
        assert_eq!(
            ParallelTopK::<u32>::from_wire(&wire).unwrap_err(),
            WireError::KeyMismatch
        );
    }

    #[test]
    fn corrupt_counter_rejected() {
        let hk = populated(3);
        let mut wire = hk.to_wire();
        // First bucket's count field: bytes after the fixed header.
        // Header: 4 magic + 1 ver + 1 keylen + 2 arrays + 4 width + 4 k
        // + 1 fp + 1 ctr + 8 seed + 9 decay + 1 store + 1 expansion = 37.
        let count_off = 37 + 4;
        wire[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt(_)
        ));
    }

    #[test]
    fn oversized_field_widths_rejected_not_panicking() {
        // fp_bits = 32 and ctr_bits = 40 each pass the individual range
        // checks but cannot share one packed bucket word; decoding must
        // return Corrupt, not panic in the config constructor.
        let mut wire = populated(3).to_wire();
        // Header: 4 magic + 1 ver + 1 keylen + 2 arrays + 4 width + 4 k.
        wire[16] = 32; // fp_bits
        wire[17] = 40; // ctr_bits
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::Corrupt("field widths")
        );
    }

    #[test]
    fn version_checked() {
        let mut wire = populated(3).to_wire();
        wire[4] = 9;
        assert_eq!(
            ParallelTopK::<u64>::from_wire(&wire).unwrap_err(),
            WireError::BadVersion(9)
        );
    }

    #[test]
    fn expansion_policy_survives_roundtrip() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(8)
            .k(4)
            .seed(1)
            .expansion(ExpansionPolicy {
                large_counter: 77,
                blocked_threshold: 99,
                max_arrays: 5,
            })
            .build();
        let hk = ParallelTopK::<u64>::new(cfg);
        let back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        assert_eq!(back.config().expansion, hk.config().expansion);
    }

    fn populated_window(seed: u64, window: usize, rotations: usize) -> crate::SlidingTopK<u64> {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(64)
            .k(8)
            .seed(seed)
            .build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, window);
        let mut state = seed | 1;
        for r in 0..=rotations as u64 {
            for _ in 0..4000u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let f = if state.is_multiple_of(3) {
                    r * 10 + state % 6
                } else {
                    1000 + state % 500
                };
                win.insert(&f);
            }
            if r < rotations as u64 {
                win.rotate();
            }
        }
        win
    }

    /// Replica-vs-original equality down to the bucket words: every
    /// epoch's matrix and store must match, not just the query surface.
    fn assert_windows_bit_equal(a: &crate::SlidingTopK<u64>, b: &crate::SlidingTopK<u64>) {
        assert_eq!(a.window(), b.window());
        assert_eq!(a.rotations(), b.rotations());
        assert_eq!(a.live_epochs(), b.live_epochs());
        let canon = |mut v: Vec<(u64, u64)>| {
            v.sort_unstable();
            v
        };
        for (ea, eb) in a.epoch_iter().zip(b.epoch_iter()) {
            // Decoded configs carry each epoch's *current* array count
            // (v1 semantics: growth survives the round trip) while the
            // local config keeps the construction base; ring identity
            // ignores that field, the sketch-level count must agree.
            assert!(same_ring_config(ea.config(), eb.config()));
            assert_eq!(ea.sketch().arrays(), eb.sketch().arrays());
            for j in 0..ea.sketch().arrays() {
                for i in 0..ea.sketch().width() {
                    assert_eq!(
                        ea.sketch().bucket(j, i),
                        eb.sketch().bucket(j, i),
                        "({j},{i})"
                    );
                }
            }
            assert_eq!(canon(ea.top_k()), canon(eb.top_k()));
        }
        for f in 0..1600u64 {
            assert_eq!(a.query(&f), b.query(&f), "flow {f}");
        }
        assert_eq!(canon(a.top_k()), canon(b.top_k()));
    }

    #[test]
    fn full_frame_roundtrips_bit_exact() {
        let win = populated_window(5, 3, 5);
        let bytes = win.export_frame(42, 4000);
        let frame = WindowFrame::<u64>::decode(&bytes).unwrap();
        assert_eq!(frame.switch_id, 42);
        assert_eq!(frame.rotation, 5);
        assert_eq!(frame.window, 3);
        assert_eq!(frame.epoch_packets, 4000);
        assert_eq!(frame.kind, FrameKind::Full);
        assert_eq!(frame.epochs.len(), 3);
        let replica = frame.into_window().unwrap();
        assert_windows_bit_equal(&win, &replica);
    }

    #[test]
    fn full_frame_during_ring_fill() {
        // Fewer live epochs than the window: the frame carries exactly
        // the live ones and the replica keeps growing correctly.
        let win = populated_window(9, 4, 1);
        assert_eq!(win.live_epochs(), 2);
        let frame = WindowFrame::<u64>::decode(&win.export_frame(1, 100)).unwrap();
        assert_eq!(frame.epochs.len(), 2);
        let mut replica = frame.into_window().unwrap();
        assert_windows_bit_equal(&win, &replica);
        replica.rotate();
        assert_eq!(replica.live_epochs(), 3);
    }

    #[test]
    fn delta_frame_carries_newest_closed_epoch() {
        let win = populated_window(7, 3, 4);
        let bytes = win
            .export_delta(3, 4000)
            .expect("rotated window has a closed epoch");
        let frame = WindowFrame::<u64>::decode(&bytes).unwrap();
        assert_eq!(frame.kind, FrameKind::Delta);
        assert_eq!(frame.rotation, 4);
        assert_eq!(frame.epochs.len(), 1);
        // The carried epoch is the one just behind the accumulating
        // newest.
        let closed = win.epoch_iter().rev().nth(1).unwrap();
        for j in 0..closed.sketch().arrays() {
            for i in 0..closed.sketch().width() {
                assert_eq!(
                    frame.epochs[0].sketch().bucket(j, i),
                    closed.sketch().bucket(j, i)
                );
            }
        }
        // Deltas do not convert to standalone windows.
        assert!(frame.into_window().is_none());
        // Cost check: a delta is roughly one epoch, not W of them.
        let full = win.export_frame(3, 4000);
        assert!(
            bytes.len() * 2 < full.len(),
            "delta {} vs full {} bytes",
            bytes.len(),
            full.len()
        );
    }

    #[test]
    fn unrotated_window_has_no_delta() {
        let cfg = HkConfig::builder().width(32).k(4).seed(1).build();
        let win = crate::SlidingTopK::<u64>::new(cfg, 3);
        assert!(win.export_delta(0, 10).is_none());
        // But a full frame works from the very start.
        let frame = WindowFrame::<u64>::decode(&win.export_frame(0, 10)).unwrap();
        assert_eq!(frame.epochs.len(), 1);
        assert_eq!(frame.rotation, 0);
    }

    #[test]
    fn expansion_grown_epochs_roundtrip_in_one_frame() {
        // Section III-F expansion grows one epoch's array count while
        // fresher (recycled) epochs stay at the base: the frame's
        // epochs legitimately disagree on `arrays`, and both the
        // decoder and the collector must accept that as one ring.
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(2)
            .k(2)
            .seed(9)
            .expansion(ExpansionPolicy {
                large_counter: 30,
                blocked_threshold: 40,
                max_arrays: 6,
            })
            .build();
        let mut win = crate::SlidingTopK::<u64>::new(cfg, 3);
        // First period: all-distinct mice — contested buckets stay
        // small, no expansion, so this epoch keeps the base arrays.
        win.insert_batch(&(0..2000u64).map(|i| 10_000 + i).collect::<Vec<_>>());
        win.rotate();
        // Second period: fill both tiny arrays with giants, then a late
        // elephant hammers until Section III-F expands the epoch (same
        // recipe as the parallel-variant expansion test).
        let mut giants: Vec<u64> = Vec::new();
        for f in 0..4u64 {
            giants.extend(std::iter::repeat_n(f, 2000));
        }
        giants.extend(std::iter::repeat_n(999u64, 3000));
        win.insert_batch(&giants);
        let arrays: Vec<usize> = win.epoch_iter().map(|e| e.sketch().arrays()).collect();
        assert!(
            arrays.iter().any(|&a| a > 2),
            "expansion precondition: {arrays:?}"
        );
        assert!(
            arrays.contains(&2),
            "base-arrays epoch precondition: {arrays:?}"
        );

        // The frame its own decoder must accept.
        let frame = WindowFrame::<u64>::decode(&win.export_frame(3, 4000)).unwrap();
        let replica = frame.into_window().unwrap();
        assert_windows_bit_equal(&win, &replica);
        // Fresh replica epochs open at the base array count, like the
        // switch's own recycled epochs.
        assert_eq!(replica.config().arrays, 2);

        // The collector path: snapshot, then a delta carrying an
        // expanded closed epoch, no Mismatch anywhere.
        use crate::collector::{AggregationRule, Collector};
        let mut coll = Collector::<u64>::new(4, AggregationRule::Sum);
        coll.submit_window_frame(&win.export_frame(3, 4000))
            .unwrap();
        win.rotate();
        coll.submit_window_frame(&win.export_delta(3, 4000).unwrap())
            .unwrap();
        let replica = coll.switch_window(3).unwrap();
        assert_eq!(replica.rotations(), win.rotations());
        for f in 0..10u64 {
            assert_eq!(replica.query(&f), win.query(&f), "flow {f}");
        }
    }

    #[test]
    fn frame_key_width_checked() {
        let win = populated_window(3, 2, 2);
        let bytes = win.export_frame(0, 100);
        assert_eq!(
            WindowFrame::<u32>::decode(&bytes).unwrap_err(),
            WireError::KeyMismatch
        );
    }

    #[test]
    fn grown_arrays_survive_roundtrip() {
        // Force Section III-F growth, then round-trip: the extra array
        // and its contents must survive.
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(2)
            .k(2)
            .seed(9)
            .expansion(ExpansionPolicy {
                large_counter: 50,
                blocked_threshold: 100,
                max_arrays: 6,
            })
            .build();
        let mut hk = ParallelTopK::<u64>::new(cfg);
        for f in 0..4u64 {
            for _ in 0..2000 {
                hk.insert(&f);
            }
        }
        for _ in 0..3000 {
            hk.insert(&999);
        }
        assert!(hk.sketch().expansions() > 0, "growth precondition");
        let back = ParallelTopK::<u64>::from_wire(&hk.to_wire()).unwrap();
        assert_eq!(back.sketch().arrays(), hk.sketch().arrays());
        for f in [0u64, 1, 2, 3, 999] {
            assert_eq!(back.query(&f), hk.query(&f));
        }
    }
}
