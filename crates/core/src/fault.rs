//! Deterministic fault injection for the sharded engine.
//!
//! Recovery code that is only exercised by hand-crafted thread aborts
//! rots; a [`FaultPlan`] makes worker death a *scheduled, reproducible*
//! event instead. A plan is a list of [`FaultSpec`]s — `kill shard k
//! after p packets`, `panic mid-walk`, `wedge the work ring` — threaded
//! through the shard worker loop by
//! [`ShardedEngine::set_fault_plan`](crate::ShardedEngine::set_fault_plan).
//! Triggers are counted in *packets applied by that shard's worker*, so
//! a given trace + seed + plan always dies at the same point of the
//! same sub-stream, no matter how threads are scheduled. Listing the
//! same shard several times schedules repeated kills: each respawned
//! worker inherits the shard's remaining faults and dies again when its
//! cumulative packet count crosses the next threshold.
//!
//! The plan syntax mirrors the CLI hook
//! (`hk run --fault kill:K@P[,kill:K@P...] --recover`):
//!
//! ```text
//! kill:2@50000            worker of shard 2 panics before the packet
//!                         that would be its 50_001st
//! mid-walk:0@1000         shard 0 applies part of the crossing batch,
//!                         then panics (state torn mid-stream)
//! wedge:1@9000            shard 1 stops consuming and closes its work
//!                         ring (backpressure sees Closed, not Full)
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What a scheduled fault does to the worker when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before applying the batch that crosses the threshold: a
    /// clean death at a batch boundary (state consistent up to the
    /// previous batch).
    Kill,
    /// Apply the packets up to the threshold, then panic *inside* the
    /// batch: the worst case — the shard's sketch is torn mid-stream
    /// and its algo mutex is poisoned.
    MidWalk,
    /// Stop consuming: close the work ring from the consumer side and
    /// exit without panicking. The dispatcher's backpressure path
    /// observes `Closed` (not `Full`) and must poison, not spin.
    Wedge,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "kill" => Some(Self::Kill),
            "mid-walk" | "midwalk" => Some(Self::MidWalk),
            "wedge" => Some(Self::Wedge),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Kill => "kill",
            Self::MidWalk => "mid-walk",
            Self::Wedge => "wedge",
        })
    }
}

/// One scheduled fault: `kind` fires on `shard`'s worker when its
/// cumulative applied-packet count crosses `after_packets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index of the shard whose worker takes the fault.
    pub shard: usize,
    /// Fires on the batch that would take the worker's cumulative
    /// applied-packet count past this threshold.
    pub after_packets: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A deterministic schedule of worker faults (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault; returns `self` for chaining.
    pub fn with(mut self, shard: usize, after_packets: u64, kind: FaultKind) -> Self {
        self.specs.push(FaultSpec {
            shard,
            after_packets,
            kind,
        });
        self
    }

    /// Shorthand for [`FaultPlan::with`]`(shard, p, FaultKind::Kill)`.
    pub fn kill(self, shard: usize, after_packets: u64) -> Self {
        self.with(shard, after_packets, FaultKind::Kill)
    }

    /// The scheduled faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// One shard's faults as the `(threshold, kind)` pairs
    /// `ShardFaults::install` takes. Used at plan install time and
    /// again when a reshard grows the topology: shard indices the old
    /// topology never had get their slice installed on the fresh
    /// worker, so a plan can schedule faults on post-grow shards.
    pub(crate) fn specs_for(&self, shard: usize) -> Vec<(u64, FaultKind)> {
        self.specs
            .iter()
            .filter(|s| s.shard == shard)
            .map(|s| (s.after_packets, s.kind))
            .collect()
    }

    /// Parses the CLI spelling: comma-separated `kind:shard@packets`
    /// entries (`kill:2@50000,wedge:1@9000`). Kinds: `kill`,
    /// `mid-walk`, `wedge`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed entry.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        for entry in s.split(',').filter(|e| !e.is_empty()) {
            let bad = || format!("bad fault spec `{entry}` (want kind:shard@packets)");
            let (kind, rest) = entry.split_once(':').ok_or_else(bad)?;
            let kind = FaultKind::parse(kind)
                .ok_or_else(|| format!("unknown fault kind `{kind}` in `{entry}`"))?;
            let (shard, packets) = rest.split_once('@').ok_or_else(bad)?;
            let shard: usize = shard.parse().map_err(|_| bad())?;
            let after_packets: u64 = packets.parse().map_err(|_| bad())?;
            plan.specs.push(FaultSpec {
                shard,
                after_packets,
                kind,
            });
        }
        Ok(plan)
    }
}

/// One shard's slice of a fault plan, shared between the engine and the
/// shard's worker (and every *respawned* worker, so repeated faults
/// keep firing in sequence). `armed` is the worker's fast-path check —
/// one relaxed load per batch when no plan is installed.
#[derive(Debug, Default)]
pub(crate) struct ShardFaults {
    armed: AtomicBool,
    /// Thresholds + kinds, sorted ascending by threshold.
    specs: Mutex<Vec<(u64, FaultKind)>>,
    /// Index of the next unconsumed fault (survives worker respawn).
    next: AtomicUsize,
}

impl ShardFaults {
    /// Installs this shard's faults (sorted by threshold) and arms the
    /// worker-side check. Replaces any previous schedule.
    pub(crate) fn install(&self, mut specs: Vec<(u64, FaultKind)>) {
        specs.sort_by_key(|&(p, _)| p);
        let armed = !specs.is_empty();
        *self
            .specs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = specs;
        self.next.store(0, Ordering::Release);
        self.armed.store(armed, Ordering::Release);
    }

    /// Returns the next scheduled fault iff applying `batch_len` more
    /// packets on top of `applied` would cross its threshold — and
    /// consumes it. Cheap when unarmed (one relaxed load).
    pub(crate) fn crossing(&self, applied: u64, batch_len: u64) -> Option<(u64, FaultKind)> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let specs = self
            .specs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let idx = self.next.load(Ordering::Acquire);
        let &(threshold, kind) = specs.get(idx)?;
        if applied + batch_len > threshold {
            self.next.store(idx + 1, Ordering::Release);
            if idx + 1 >= specs.len() {
                self.armed.store(false, Ordering::Relaxed);
            }
            Some((threshold, kind))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cli_spellings() {
        let plan = FaultPlan::parse("kill:2@50000").unwrap();
        assert_eq!(
            plan.specs(),
            &[FaultSpec {
                shard: 2,
                after_packets: 50_000,
                kind: FaultKind::Kill
            }]
        );
        let plan = FaultPlan::parse("kill:0@10,mid-walk:1@20,wedge:0@30").unwrap();
        assert_eq!(plan.specs().len(), 3);
        assert_eq!(plan.specs()[1].kind, FaultKind::MidWalk);
        assert_eq!(plan.specs()[2].kind, FaultKind::Wedge);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["kill", "kill:2", "kill:x@5", "kill:2@x", "melt:2@5", "2@5"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn builder_mirrors_parser() {
        let built = FaultPlan::new()
            .kill(2, 50_000)
            .with(1, 9_000, FaultKind::Wedge);
        let parsed = FaultPlan::parse("kill:2@50000,wedge:1@9000").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn crossing_consumes_in_threshold_order() {
        let faults = ShardFaults::default();
        faults.install(vec![(30, FaultKind::Wedge), (10, FaultKind::Kill)]);
        // Below the first threshold: nothing fires.
        assert_eq!(faults.crossing(0, 10), None, "10 does not cross 10");
        // The crossing batch fires the *lowest* threshold first.
        assert_eq!(faults.crossing(0, 11), Some((10, FaultKind::Kill)));
        // The next fault waits for its own threshold.
        assert_eq!(faults.crossing(11, 19), None);
        assert_eq!(faults.crossing(11, 20), Some((30, FaultKind::Wedge)));
        // Exhausted: disarmed, never fires again.
        assert_eq!(faults.crossing(0, u64::MAX / 2), None);
    }

    #[test]
    fn unarmed_is_inert() {
        let faults = ShardFaults::default();
        assert_eq!(faults.crossing(0, u64::MAX / 2), None);
        faults.install(Vec::new());
        assert_eq!(faults.crossing(0, u64::MAX / 2), None);
    }
}
