//! Bounded SPSC rings — the sharded engine's worker transport.
//!
//! The dispatch plane ships prepared sub-batches to shard workers and
//! recycles drained buffers back over [`SpscRing`]s: fixed-capacity
//! single-producer/single-consumer queues with **backpressure** (a full
//! ring rejects the push; the dispatcher spins the message into the
//! ring when the worker frees a slot) instead of the unbounded,
//! node-allocating queueing of `std::sync::mpsc`. Steady-state traffic
//! allocates nothing: the slot array is fixed at construction and the
//! payloads it carries are recycled by the return ring.
//!
//! This is a sibling of `hk_ovs::ring::SharedRing`, which models the
//! datapath↔user-space shared-memory region (drop statistics, spinning
//! producers). This ring is the *in-process* transport: it adds a
//! close flag for orderly worker shutdown and `Err`-returning pushes so
//! the dispatcher can tell "full, worker alive → wait" from "closed →
//! stop", and carries whole batch buffers rather than flow IDs. Like
//! `SharedRing` it stays inside `forbid(unsafe_code)`: each slot is a
//! tiny `Mutex<Option<T>>` that is uncontended under the SPSC
//! discipline, with head/tail cursors advanced only by their owning
//! side.
//!
//! **SPSC contract:** at any moment at most one thread pushes and at
//! most one thread pops. The sides may be *handed over* (the engine
//! serializes all producer-side calls under its pending-buffer lock),
//! but two threads must never race the same side — the cursor updates
//! are plain load/store pairs that are only race-free under that
//! discipline.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Every slot is occupied; the consumer must drain first. The item
    /// is handed back so the producer can retry (backpressure).
    Full(T),
    /// The ring was closed; no more items will ever be consumed.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A bounded single-producer/single-consumer ring with a close flag.
///
/// # Examples
///
/// ```
/// use heavykeeper::spsc::SpscRing;
/// let ring: SpscRing<u64> = SpscRing::new(4);
/// assert!(ring.try_push(7).is_ok());
/// assert_eq!(ring.try_pop(), Some(7));
/// assert_eq!(ring.try_pop(), None);
/// ```
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Consumer cursor (only the consumer advances it).
    head: AtomicUsize,
    /// Producer cursor (only the producer advances it).
    tail: AtomicUsize,
    /// Occupied slots; the producer increments after writing, the
    /// consumer decrements after taking. `SeqCst` so the emptiness
    /// check can participate in the engine's sleep/wake handshake
    /// (flag-then-recheck on the worker, push-then-check on the
    /// dispatcher) without a missed-wakeup window.
    len: AtomicUsize,
    closed: AtomicBool,
    /// Successful pushes over the ring's lifetime (observability;
    /// relaxed — statistical, never part of the handshake).
    pushes: AtomicU64,
    /// Successful pops over the ring's lifetime.
    pops: AtomicU64,
}

impl<T> SpscRing<T> {
    /// Creates a ring with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        // hk-lint: allow(panic-free-worker-paths) construction-time contract — a zero-capacity ring is a build bug, not a runtime fault
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            pushes: AtomicU64::new(0),
            pops: AtomicU64::new(0),
        }
    }

    /// Attempts to push. A refused item comes back in the error so a
    /// backpressured producer retries without cloning.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        if self.len.load(Ordering::SeqCst) == self.slots.len() {
            return Err(PushError::Full(item));
        }
        let tail = self.tail.load(Ordering::Relaxed);
        // Poison cannot tear a slot: the critical section is a plain
        // Option swap. Absorb it rather than cascade the panic.
        *self.slots[tail % self.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(item);
        self.tail.store(tail.wrapping_add(1), Ordering::Relaxed);
        self.len.fetch_add(1, Ordering::SeqCst);
        self.pushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attempts to pop one item. Items enqueued before [`SpscRing::close`]
    /// remain poppable after it (drain-then-stop shutdown).
    pub fn try_pop(&self) -> Option<T> {
        if self.len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let head = self.head.load(Ordering::Relaxed);
        let item = self.slots[head % self.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        debug_assert!(item.is_some(), "len > 0 implies an occupied head slot");
        self.head.store(head.wrapping_add(1), Ordering::Relaxed);
        self.len.fetch_sub(1, Ordering::SeqCst);
        self.pops.fetch_add(1, Ordering::Relaxed);
        item
    }

    /// Marks the ring closed: further pushes fail with
    /// [`PushError::Closed`]; already-queued items stay poppable.
    /// Either side may close (the engine closes from the dispatcher on
    /// drop; a consumer may close to refuse further work).
    ///
    /// `SeqCst` so close participates in the same sleep/wake handshake
    /// as pushes: close-then-wake on one side, flag-then-recheck on the
    /// other, with the total order guaranteeing one side sees the
    /// other.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// True once [`SpscRing::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// True when the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len.load(Ordering::SeqCst) == 0
    }

    /// Occupied slots right now.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Successful pushes over the ring's lifetime (relaxed).
    pub fn pushes(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Successful pops over the ring's lifetime (relaxed).
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Relaxed)
    }

    /// True when every slot is occupied — the next `try_push` would
    /// return [`PushError::Full`]. Advisory on the producer side (the
    /// consumer may free a slot at any moment): a shedding dispatcher
    /// uses it to decide *before* building a message, the push result
    /// stays the source of truth.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_empty() {
        let ring: SpscRing<u32> = SpscRing::new(8);
        assert_eq!(ring.try_pop(), None, "fresh ring is empty");
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn push_pop_counters_track_successes_only() {
        let ring: SpscRing<u32> = SpscRing::new(2);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert!(ring.try_push(3).is_err(), "full push must not count");
        assert_eq!(ring.pushes(), 2);
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.pops(), 1);
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), None, "empty pop must not count");
        assert_eq!((ring.pushes(), ring.pops()), (2, 2));
    }

    #[test]
    fn full_hands_item_back() {
        let ring: SpscRing<u32> = SpscRing::new(2);
        assert!(!ring.is_full());
        ring.try_push(1).unwrap();
        assert!(!ring.is_full());
        ring.try_push(2).unwrap();
        assert!(ring.is_full(), "capacity reached");
        match ring.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3, "backpressure returns the item"),
            other => panic!("expected Full, got {other:?}"),
        }
        // One pop frees exactly one slot.
        assert_eq!(ring.try_pop(), Some(1));
        ring.try_push(3).unwrap();
        assert!(matches!(ring.try_push(4), Err(PushError::Full(4))));
    }

    #[test]
    fn wraparound_many_times_over() {
        // A tiny ring cycled far past its capacity: cursors wrap, FIFO
        // order and occupancy stay exact.
        let ring: SpscRing<u64> = SpscRing::new(3);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for round in 0..10_000 {
            let burst = 1 + round % 3;
            for _ in 0..burst {
                if ring.try_push(next_in).is_ok() {
                    next_in += 1;
                }
            }
            while let Some(v) = ring.try_pop() {
                assert_eq!(v, next_out, "FIFO across wraparound");
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out);
        assert!(next_in > 10_000, "the ring actually cycled");
    }

    #[test]
    fn slow_consumer_backpressure_loses_nothing() {
        // Producer thread spins full pushes against a deliberately slow
        // consumer: every item arrives exactly once, in order, and the
        // occupancy never exceeds capacity.
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(4));
        let n = 50_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut full_hits = 0u64;
                for i in 0..n {
                    let mut item = i;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                full_hits += 1;
                                item = back;
                                std::hint::spin_loop();
                            }
                            Err(PushError::Closed(_)) => panic!("ring closed mid-stream"),
                        }
                    }
                }
                full_hits
            })
        };
        let mut expected = 0u64;
        while expected < n {
            assert!(ring.len() <= ring.capacity());
            if let Some(v) = ring.try_pop() {
                assert_eq!(v, expected, "SPSC order must hold");
                expected += 1;
                if expected.is_multiple_of(64) {
                    std::thread::yield_now(); // Let the producer hit Full.
                }
            } else {
                std::hint::spin_loop();
            }
        }
        let full_hits = producer.join().unwrap();
        assert!(
            full_hits > 0,
            "consumer was never slow enough to exercise backpressure"
        );
    }

    #[test]
    fn close_refuses_pushes_but_drains_queued() {
        let ring: SpscRing<u32> = SpscRing::new(4);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        ring.close();
        assert!(ring.is_closed());
        assert!(matches!(ring.try_push(3), Err(PushError::Closed(3))));
        // Shutdown is drain-then-stop: the backlog survives the close.
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn consumer_side_close_fails_inflight_push_with_closed_not_full() {
        // The wedge-fault path: a consumer that stops consuming closes
        // the ring from its side. A producer spinning on backpressure
        // against a *full* ring must then see `Closed` (stop, poison
        // the shard), never keep getting `Full` (spin forever).
        let ring: Arc<SpscRing<u32>> = Arc::new(SpscRing::new(2));
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert!(matches!(ring.try_push(3), Err(PushError::Full(3))));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                ring.close(); // Refuse further work, drain nothing.
            })
        };
        consumer.join().unwrap();
        // The ring is still full, but Closed must win over Full:
        // backpressure on a wedged consumer is not backpressure.
        assert!(matches!(ring.try_push(3), Err(PushError::Closed(3))));
        // The wedged backlog stays poppable (drain-then-stop), so an
        // engine that wanted to salvage it still could.
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn close_races_concurrent_pops_without_losing_the_backlog() {
        // Close-during-pop: a consumer draining while the other side
        // closes must observe every queued item exactly once — close is
        // a pure push-gate, invisible to the pop path.
        for _ in 0..100 {
            let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::new(8));
            for i in 0..8 {
                ring.try_push(i).unwrap();
            }
            let closer = {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || ring.close())
            };
            let mut got = Vec::new();
            while got.len() < 8 {
                if let Some(v) = ring.try_pop() {
                    got.push(v);
                }
            }
            closer.join().unwrap();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
            assert!(ring.is_closed());
        }
    }

    #[test]
    fn fresh_ring_after_close_carries_a_new_stream() {
        // The respawn path: a dead shard's rings are abandoned (closed,
        // possibly non-empty) and replaced wholesale. The replacement
        // must be fully independent — open, empty, and unaffected by
        // the old ring's state.
        let old: SpscRing<u32> = SpscRing::new(4);
        old.try_push(7).unwrap();
        old.close();
        let fresh: SpscRing<u32> = SpscRing::new(4);
        assert!(!fresh.is_closed());
        assert!(fresh.is_empty());
        fresh.try_push(42).unwrap();
        assert_eq!(fresh.try_pop(), Some(42));
        // And the abandoned ring still honors drain-then-stop.
        assert_eq!(old.try_pop(), Some(7));
        assert!(matches!(old.try_push(8), Err(PushError::Closed(8))));
    }

    #[test]
    fn dropping_the_ring_drops_queued_items() {
        // Worker-death semantics: when a ring goes away with items still
        // queued (the engine dropping a poisoned shard's transport), the
        // items are dropped — not leaked, not double-dropped.
        let sentinel = Arc::new(());
        {
            let ring: SpscRing<Arc<()>> = SpscRing::new(8);
            for _ in 0..5 {
                ring.try_push(Arc::clone(&sentinel)).unwrap();
            }
            assert_eq!(Arc::strong_count(&sentinel), 6);
            assert_eq!(ring.len(), 5);
        }
        assert_eq!(
            Arc::strong_count(&sentinel),
            1,
            "queued items must be dropped with the ring"
        );
    }
}
