//! The Software Minimum version (Section IV, Algorithm 2).
//!
//! The Parallel version decays *every* mapped bucket that belongs to
//! another flow, which Section IV-A shows is unnecessary and harmful:
//! decaying a large counter neither evicts its elephant nor contributes
//! to any query. The Minimum version touches **at most one bucket per
//! packet**:
//!
//! 1. If some mapped bucket holds the flow's fingerprint (and the
//!    Optimization II gate allows it), increment that one bucket.
//! 2. Otherwise, if some mapped bucket is empty, claim the first one.
//! 3. Otherwise, apply the decay roll to the **first smallest** mapped
//!    counter only ("minimum decay").
//!
//! Because each flow occupies at most one bucket (no duplicates across
//! arrays), memory is used more efficiently — the paper's Figures 23–31
//! show the accuracy gain, which experiments E15–E17 reproduce.

use crate::config::HkConfig;
use crate::sketch::{HkSketch, PreparedKey};
use crate::stats::InsertStats;
use crate::store::TopKStore;
use hk_common::algorithm::{PreparedInsert, TopKAlgorithm};
use hk_common::key::FlowKey;
use hk_common::prepared::{HashSpec, KeySlots, PreparedBatch};

/// Software Minimum HeavyKeeper (Algorithm 2).
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, MinimumTopK};
/// use hk_common::TopKAlgorithm;
/// let cfg = HkConfig::builder().width(256).k(8).seed(1).build();
/// let mut hk = MinimumTopK::<u64>::new(cfg);
/// for i in 0..5000u64 {
///     hk.insert(&(i % 10));
///     hk.insert(&(1000 + i));
/// }
/// let top: Vec<u64> = hk.top_k().into_iter().map(|(k, _)| k).collect();
/// assert!(top.iter().all(|&k| k < 10));
/// ```
#[derive(Debug, Clone)]
pub struct MinimumTopK<K: FlowKey> {
    sketch: HkSketch,
    store: TopKStore<K>,
    cfg: HkConfig,
    /// Reusable batch-prolog scratch of prepared keys + cached slots.
    scratch: PreparedBatch,
}

impl<K: FlowKey> MinimumTopK<K> {
    /// Builds the algorithm from a configuration.
    pub fn new(cfg: HkConfig) -> Self {
        Self {
            sketch: HkSketch::new(&cfg),
            store: TopKStore::new(cfg.store, cfg.k),
            cfg,
            scratch: PreparedBatch::new(),
        }
    }

    /// Constructor from a total memory budget in bytes (Section VI-A
    /// accounting).
    pub fn with_memory(bytes: usize, k: usize, seed: u64) -> Self {
        let store_bytes = k * (K::ENCODED_LEN + 4);
        let sketch_bytes = bytes.saturating_sub(store_bytes).max(8);
        let cfg = HkConfig::builder()
            .memory_bytes(sketch_bytes)
            .k(k)
            .seed(seed)
            .build();
        Self::new(cfg)
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &HkSketch {
        &self.sketch
    }

    /// Mutable access for the [`crate::merge`] machinery.
    pub(crate) fn sketch_mut(&mut self) -> &mut HkSketch {
        &mut self.sketch
    }

    /// Offers a flow with an externally derived estimate to the top-k
    /// store (collector-side path: no Optimization I gate, estimates
    /// arrive in arbitrary steps rather than +1 increments).
    pub(crate) fn offer(&mut self, key: K, estimate: u64) {
        if self.store.contains(&key) {
            self.store.update_max(&key, estimate);
        } else if !self.store.is_full() || estimate > self.store.nmin() {
            self.store.admit(key, estimate);
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &HkConfig {
        &self.cfg
    }

    /// Insertion-outcome counters since construction or [`reset`](Self::reset).
    pub fn stats(&self) -> &InsertStats {
        self.sketch.stats()
    }

    /// Clears all measurement state for a new epoch, keeping the
    /// configuration. Used by periodic network-wide collection (paper
    /// footnote 2), where each switch reports and resets per period.
    pub fn reset(&mut self) {
        self.sketch.reset();
        self.store = TopKStore::new(self.cfg.store, self.cfg.k);
    }

    /// The insert body (Algorithm 2), generic over how bucket slots are
    /// obtained (on demand for the scalar path, cached for the batched
    /// path).
    fn insert_keyed<S: KeySlots>(&mut self, key: &K, s: &S) {
        // Step 1: monitored flag and admission threshold.
        let flag = self.store.contains(key);
        let nmin = self.store.nmin();

        // Steps 2-4: the at-most-one-bucket walk
        // ([`HkSketch::walk_minimum`]).
        let (heavy_v, blocked) = self.sketch.walk_minimum(s, flag, nmin);
        if blocked {
            self.sketch.stats_mut().blocked += 1;
            self.sketch.note_blocked();
        }

        // Step 5: top-k store update (same rule as the Parallel version).
        if flag {
            self.store.update_max(key, heavy_v);
        } else if !self.store.is_full() {
            if heavy_v > 0 {
                self.store.admit(*key, heavy_v);
                self.sketch.stats_mut().admissions += 1;
            }
        } else if heavy_v == nmin + 1 {
            self.store.admit(*key, heavy_v);
            self.sketch.stats_mut().admissions += 1;
        } else if heavy_v > nmin {
            self.sketch.stats_mut().admissions_rejected += 1;
        }
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for MinimumTopK<K> {
    fn insert(&mut self, key: &K) {
        let kb = key.key_bytes();
        let p = self.sketch.prepare(kb.as_slice());
        self.insert_prepared(key, &p);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        // Prolog: hash the whole batch into the scratch buffer, then walk
        // buckets in pre-touched blocks — the shared body lives in
        // `sketch::hk_insert_batch_body`.
        crate::sketch::hk_insert_batch_body!(self, keys);
    }

    fn query(&self, key: &K) -> u64 {
        let kb = key.key_bytes();
        self.sketch.query(kb.as_slice())
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        self.store.sorted_desc()
    }

    fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes() + self.store.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "HK-Minimum"
    }
}

impl<K: FlowKey> PreparedInsert<K> for MinimumTopK<K> {
    fn hash_spec(&self) -> HashSpec {
        self.sketch.hash_spec()
    }

    fn insert_prepared(&mut self, key: &K, p: &PreparedKey) {
        self.insert_keyed(key, p);
    }

    fn insert_prepared_batch(&mut self, keys: &[K], prepared: &[PreparedKey]) {
        // Hash-once handoff: the upstream stage already prepared every
        // key; rebuild the slot table locally and go straight to the
        // pre-touched block walk.
        crate::sketch::hk_insert_prepared_batch_body!(self, keys, prepared);
    }

    fn consumes_prepared(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).k(k).seed(5).build()
    }

    #[test]
    fn situation1_increments_single_bucket() {
        let mut hk = MinimumTopK::<u64>::new(cfg(32, 4));
        for _ in 0..10 {
            hk.insert(&1);
        }
        // Exactly one bucket in the whole sketch should hold the flow.
        let occupancy = hk.sketch().occupancy();
        assert_eq!(occupancy, 1, "Minimum version must not duplicate flows");
        assert_eq!(hk.query(&1), 10);
    }

    #[test]
    fn no_duplicates_across_arrays() {
        let mut hk = MinimumTopK::<u64>::new(cfg(64, 8));
        for i in 0..5000u64 {
            hk.insert(&(i % 20));
        }
        // 20 flows, each in at most one bucket: occupancy <= 20.
        assert!(hk.sketch().occupancy() <= 20);
    }

    #[test]
    fn parallel_may_duplicate_minimum_does_not() {
        use crate::parallel::ParallelTopK;
        let c = cfg(64, 8);
        let mut par = ParallelTopK::<u64>::new(c.clone());
        let mut min = MinimumTopK::<u64>::new(c);
        for i in 0..20_000u64 {
            let f = i % 10;
            par.insert(&f);
            min.insert(&f);
        }
        // Ten flows: Minimum occupies <= 10 buckets; Parallel typically
        // holds each flow in ~d buckets.
        assert!(min.sketch().occupancy() <= 10);
        assert!(par.sketch().occupancy() > min.sketch().occupancy());
    }

    #[test]
    fn elephants_found_under_tight_memory() {
        // 8 buckets total for 4 elephants + mice stream.
        let mut hk = MinimumTopK::<u64>::new(cfg(4, 4));
        for round in 0..3000u64 {
            for e in 0..4u64 {
                hk.insert(&e);
            }
            hk.insert(&(100 + round));
        }
        let top: Vec<u64> = hk.top_k().into_iter().map(|(k, _)| k).collect();
        let hits = top.iter().filter(|&&k| k < 4).count();
        assert!(hits >= 3, "top = {top:?}");
    }

    #[test]
    fn no_overestimation() {
        use std::collections::HashMap;
        let mut hk = MinimumTopK::<u64>::new(cfg(64, 8));
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 7u64;
        for _ in 0..30_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 8
            } else {
                100 + state % 3000
            };
            hk.insert(&f);
            *truth.entry(f).or_insert(0) += 1;
        }
        for (f, est) in hk.top_k() {
            assert!(est <= truth[&f], "flow {f}: {est} > {}", truth[&f]);
        }
    }

    #[test]
    fn minimum_decay_targets_smallest() {
        // Craft: one array pair where a flow's two buckets hold counters
        // 1 (mouse) and large (elephant). Insert a new flow repeatedly —
        // only the small bucket may ever be displaced.
        let mut hk = MinimumTopK::<u64>::new(cfg(1, 2)); // 2 arrays x 1 bucket
        for _ in 0..10_000 {
            hk.insert(&1); // Elephant takes the single bucket of array 1.
        }
        let big_before = hk
            .sketch()
            .bucket(0, 0)
            .count
            .max(hk.sketch().bucket(1, 0).count);
        assert!(big_before > 5_000);
        // A stream of distinct mice hits both buckets; minimum decay
        // must chew on the smaller one and leave the elephant's counter
        // almost intact.
        for m in 0..2000u64 {
            hk.insert(&(10 + m));
        }
        let big_after = hk
            .sketch()
            .bucket(0, 0)
            .count
            .max(hk.sketch().bucket(1, 0).count);
        assert!(
            big_after + 10 >= big_before,
            "elephant bucket decayed {big_before} -> {big_after}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut hk = MinimumTopK::<u64>::new(cfg(64, 4));
            for i in 0..10_000u64 {
                hk.insert(&(i % 50));
            }
            hk.top_k()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_touch_at_most_one_bucket_per_packet() {
        let mut hk = MinimumTopK::<u64>::new(cfg(32, 4));
        for i in 0..5000u64 {
            hk.insert(&(i % 100));
        }
        let s = *hk.stats();
        assert_eq!(s.packets, 5000);
        // The Minimum version's defining property, visible in the
        // counters: at most one bucket *write path* per packet.
        let touches = s.empty_claims + s.increments + s.decay_rolls;
        assert!(touches <= 5000, "more than one touched bucket per packet");
        assert!(s.decays <= s.decay_rolls);
        assert!(s.replacements <= s.decays);
    }
}
