//! Sliding-window top-k — an extension beyond the paper.
//!
//! The paper's deployment model is *tumbling*: every reporting period
//! the switch ships its sketch and resets (footnote 2). Operators often
//! want the complementary *sliding* view — "the top-k flows over the
//! last W periods" — which the related-work line on CSS ("heavy hitters
//! in streams and sliding windows", Ben-Basat et al.) pursues for
//! Space-Saving. [`SlidingTopK`] provides it for HeavyKeeper with the
//! standard epoch-ring construction:
//!
//! * the window is `W` epochs; each epoch is an independent
//!   [`ParallelTopK`] over only that epoch's packets;
//! * ingest feeds the newest epoch — through the full batch-first
//!   pipeline: [`SlidingTopK::insert_batch`] runs one prepared-batch
//!   prehash + slot-table prolog and a pre-touched block walk, and the
//!   window implements [`PreparedInsert`] so upstream stages that
//!   already hashed can hand prepared keys straight in;
//! * [`SlidingTopK::rotate`] closes the newest epoch and *recycles* the
//!   oldest: the evicted epoch's bucket matrix is cleared with one
//!   memset (its decay RNG rewound, its store emptied) and reused as
//!   the new epoch, so the eagerly-populated pages stay hot across
//!   rotations instead of being freed and page-faulted back in. One
//!   call per period boundary — the caller owns the clock, so tests and
//!   simulations stay deterministic. A recycled epoch is bit-exact with
//!   a freshly allocated one ([`ParallelTopK::recycle`]);
//! * a window query sums per-epoch estimates over the live epochs.
//!   All epochs share `cfg.seed`, so one [`PreparedKey`] is valid in
//!   every epoch: a candidate is hashed **once** and walked through all
//!   `W` epochs ([`ParallelTopK::query_prepared`]). Sums over the
//!   *closed* epochs (all but the newest) are additionally cached
//!   between rotations — closed epochs are immutable until the next
//!   [`SlidingTopK::rotate`], which invalidates the cache.
//!   Per-epoch estimates never over-estimate (Theorem 2), so the summed
//!   window estimate never over-estimates the flow's window count.
//!
//! The window's candidate set is the union of per-epoch top-k sets
//! (deduplicated through a hash set, not a quadratic scan). A flow that
//! is top-k over the window but never top-k within any single epoch can
//! be missed — the same within-epoch granularity limit as every
//! epoch-ring scheme; widening per-epoch `k` mitigates it.
//!
//! Memory is `W`× one sketch, the usual price of sliding windows.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::config::HkConfig;
use crate::merge::MergeError;
use crate::parallel::ParallelTopK;
use hk_common::algorithm::{EpochRotate, PreparedInsert, TopKAlgorithm};
use hk_common::key::FlowKey;
use hk_common::prepared::{HashSpec, PreparedKey};

/// Top-k flows over a sliding window of the last `W` epochs.
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, sliding::SlidingTopK};
/// use hk_common::TopKAlgorithm;
///
/// let cfg = HkConfig::builder().width(256).k(4).seed(1).build();
/// let mut win = SlidingTopK::<u64>::new(cfg, 3); // last 3 epochs
/// for epoch in 0..5u64 {
///     let period = vec![epoch; 1000]; // each epoch has its own elephant
///     win.insert_batch(&period);
///     win.rotate();
/// }
/// let top: Vec<u64> = win.top_k().into_iter().map(|(k, _)| k).collect();
/// // Epochs 0 and 1 have slid out of the window.
/// assert!(!top.contains(&0) && !top.contains(&1));
/// assert!(top.contains(&4));
/// ```
#[derive(Debug)]
pub struct SlidingTopK<K: FlowKey> {
    epochs: VecDeque<ParallelTopK<K>>,
    cfg: HkConfig,
    window: usize,
    rotations: u64,
    /// Per-flow sums of estimates over the *closed* epochs (all but the
    /// newest). Closed epochs are immutable between rotations, so
    /// entries stay valid until [`SlidingTopK::rotate`] clears them;
    /// ingest only touches the newest epoch, which is excluded.
    /// A `Mutex` (not `RefCell`) so the window stays `Sync` like every
    /// other algorithm here — uncontended on the single-owner path.
    closed_cache: Mutex<HashMap<K, u64>>,
    /// Reusable scratch for [`SlidingTopK::top_k`]: the dedup set and
    /// the candidate buffer keep their capacity across queries instead
    /// of being reallocated per call (a windowed monitor polls `top_k`
    /// every few batches, and `W·k` candidates per poll add up). Same
    /// `Mutex`-for-`Sync` reasoning as the closed cache.
    topk_scratch: Mutex<TopKScratch<K>>,
    /// The dirty-delta exporter's retained snapshot of the last exported
    /// closed epoch ([`SlidingTopK::export_dirty`]): the packed words the
    /// *next* closed epoch is scan-and-compared against. `None` until the
    /// first dirty export primes it. One extra matrix of memory — the
    /// price of O(changed buckets) steady-state export — deliberately
    /// outside [`SlidingTopK::memory_bytes`], which accounts the
    /// measurement structure, not the telemetry plane.
    pub(crate) export_shadow: Option<ExportShadow>,
    /// Lifetime export operations served (frames + deltas + dirty
    /// patches), atomic because the frame/delta exporters take `&self`.
    pub(crate) export_ops: AtomicU64,
    /// Total wire bytes across those exports.
    pub(crate) export_bytes: AtomicU64,
}

/// The packed words of the last closed epoch a dirty delta shipped,
/// tagged with the rotation that closed it (staleness check: a dirty
/// delta at rotation `R` is only valid against the shadow of `R - 1`).
#[derive(Debug, Clone)]
pub(crate) struct ExportShadow {
    /// Rotation counter at snapshot time; the snapshotted epoch is the
    /// one this rotation closed.
    pub(crate) rotation: u64,
    /// Matrix rows at snapshot time (Section III-F expansion can make
    /// this differ from the next closed epoch's).
    pub(crate) rows: usize,
    /// Matrix width (never changes within a ring; double-checked so a
    /// stale shadow can never be diffed against a different geometry).
    pub(crate) width: usize,
    /// The snapshot: `rows × width` packed words, row-major.
    pub(crate) words: Vec<u64>,
}

/// The per-query allocations of `top_k`, retained across calls.
#[derive(Debug)]
struct TopKScratch<K> {
    seen: HashSet<K>,
    candidates: Vec<(K, u64)>,
}

impl<K> Default for TopKScratch<K> {
    fn default() -> Self {
        Self {
            seen: HashSet::new(),
            candidates: Vec::new(),
        }
    }
}

impl<K: FlowKey> Clone for SlidingTopK<K> {
    fn clone(&self) -> Self {
        Self {
            epochs: self.epochs.clone(),
            cfg: self.cfg.clone(),
            window: self.window,
            rotations: self.rotations,
            closed_cache: Mutex::new(self.cache().clone()),
            // Scratch is cheap to refill; a clone starts cold.
            topk_scratch: Mutex::new(TopKScratch::default()),
            export_shadow: self.export_shadow.clone(),
            export_ops: AtomicU64::new(self.export_ops()),
            export_bytes: AtomicU64::new(self.exported_bytes()),
        }
    }
}

impl<K: FlowKey> SlidingTopK<K> {
    /// Creates a window of `window` epochs, each an independent
    /// HeavyKeeper built from `cfg`.
    ///
    /// All epochs share `cfg.seed`, so a flow occupies the same buckets
    /// in every epoch — this is what lets the window hash a flow once
    /// and reuse the prepared state across all live epochs.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(cfg: HkConfig, window: usize) -> Self {
        assert!(window > 0, "window must span at least one epoch");
        let mut epochs = VecDeque::with_capacity(window);
        epochs.push_back(ParallelTopK::new(cfg.clone()));
        Self {
            epochs,
            cfg,
            window,
            rotations: 0,
            closed_cache: Mutex::new(HashMap::new()),
            topk_scratch: Mutex::new(TopKScratch::default()),
            export_shadow: None,
            export_ops: AtomicU64::new(0),
            export_bytes: AtomicU64::new(0),
        }
    }

    /// Constructor from a *total* memory budget in bytes: the budget is
    /// split evenly across the `window` epochs (each epoch gets the
    /// [`ParallelTopK::with_memory`] accounting of its share), so a
    /// windowed run is charged the same total memory as a steady-state
    /// run with the same `--memory` flag.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_memory(bytes: usize, k: usize, seed: u64, window: usize) -> Self {
        assert!(window > 0, "window must span at least one epoch");
        let store_bytes = k * (K::ENCODED_LEN + 4);
        let sketch_bytes = (bytes / window).saturating_sub(store_bytes).max(8);
        let cfg = HkConfig::builder()
            .memory_bytes(sketch_bytes)
            .k(k)
            .seed(seed)
            .build();
        Self::new(cfg, window)
    }

    /// Number of epochs the window spans.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of epochs currently live (≤ `window`; smaller at startup).
    pub fn live_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Total period boundaries crossed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Lifetime export operations served by this window — full frames,
    /// deltas and dirty patches alike (observability; see `hk-obs`).
    pub fn export_ops(&self) -> u64 {
        self.export_ops.load(Ordering::Relaxed)
    }

    /// Total wire bytes across every export served.
    pub fn exported_bytes(&self) -> u64 {
        self.export_bytes.load(Ordering::Relaxed)
    }

    /// Accounts one served export of `bytes` wire bytes (called by the
    /// wire-format exporters; atomics so `&self` exporters can bump).
    pub(crate) fn note_export(&self, bytes: usize) {
        self.export_ops.fetch_add(1, Ordering::Relaxed);
        self.export_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// The configuration each epoch is built from.
    pub fn config(&self) -> &HkConfig {
        &self.cfg
    }

    fn newest(&self) -> &ParallelTopK<K> {
        self.epochs
            .back()
            .expect("at least one epoch is always live")
    }

    fn newest_mut(&mut self) -> &mut ParallelTopK<K> {
        self.epochs
            .back_mut()
            .expect("at least one epoch is always live")
    }

    /// Processes one packet of flow `key` into the newest epoch.
    pub fn insert(&mut self, key: &K) {
        self.newest_mut().insert(key);
    }

    /// Processes a batch into the newest epoch through the batch-first
    /// pipeline: one prepared-batch prehash + slot-table prolog, then a
    /// pre-touched block walk ([`ParallelTopK::insert_batch`]). The
    /// prolog scratch lives on the epoch and is recycled with it, so
    /// steady-state windowed ingest allocates nothing.
    pub fn insert_batch(&mut self, keys: &[K]) {
        self.newest_mut().insert_batch(keys);
    }

    /// Crosses a period boundary: opens a fresh epoch and, once more
    /// than `window` epochs are live, *recycles* the oldest — its
    /// bucket matrix is cleared with one memset and reused as the new
    /// epoch ([`ParallelTopK::recycle`]), keeping the matrix's
    /// eagerly-populated pages hot instead of allocating afresh.
    pub fn rotate(&mut self) {
        if self.epochs.len() == self.window {
            let mut evicted = self
                .epochs
                .pop_front()
                .expect("at least one epoch is always live");
            evicted.recycle();
            self.epochs.push_back(evicted);
        } else {
            self.epochs.push_back(ParallelTopK::new(self.cfg.clone()));
        }
        self.rotations += 1;
        // The closed set changed; cached closed-epoch sums are stale.
        self.cache().clear();
    }

    fn cache(&self) -> std::sync::MutexGuard<'_, HashMap<K, u64>> {
        // The guard only covers map reads/inserts, so poison (which
        // would need a panic in the allocator) cannot leave a torn
        // entry behind — absorb it.
        self.closed_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Cap on cached closed-epoch sums: enough for every `top_k`
    /// candidate (at most `W·k` per rotation) several times over, while
    /// keeping the window's memory bounded no matter how many distinct
    /// flows are point-queried between rotations — an unbounded map
    /// would betray the sketch's fixed-memory contract.
    fn closed_cache_cap(&self) -> usize {
        (4 * self.window * self.cfg.k).max(1024)
    }

    /// The sum of per-epoch estimates over the closed epochs, through
    /// the cache (one walk per closed epoch on a miss, one map lookup
    /// afterwards until the next rotation). `p` is the caller's
    /// prepared state for `key`.
    fn closed_estimate(&self, key: &K, p: &PreparedKey) -> u64 {
        if self.epochs.len() <= 1 {
            return 0;
        }
        if let Some(&sum) = self.cache().get(key) {
            return sum;
        }
        let sum = self
            .epochs
            .iter()
            .take(self.epochs.len() - 1)
            .map(|e| e.query_prepared(p))
            .sum();
        let mut cache = self.cache();
        if cache.len() < self.closed_cache_cap() {
            cache.insert(*key, sum);
        }
        sum
    }

    /// Hashes a flow once; the prepared state is valid in every epoch
    /// (shared seed).
    fn prepare(&self, key: &K) -> PreparedKey {
        let kb = key.key_bytes();
        self.newest().sketch().prepare(kb.as_slice())
    }

    /// The flow's estimated size over the window: the sum of per-epoch
    /// estimates. The flow is hashed exactly once; closed-epoch sums
    /// come from the rotation-invalidated cache. Never over-estimates
    /// the window count (each summand is a per-epoch lower bound,
    /// Theorem 2).
    pub fn query(&self, key: &K) -> u64 {
        let p = self.prepare(key);
        self.closed_estimate(key, &p) + self.newest().query_prepared(&p)
    }

    /// The top-k flows over the window, largest first.
    ///
    /// Candidates are the union of per-epoch top-k sets (hash-set
    /// deduplicated, epoch order preserved); each candidate is
    /// re-estimated with the window query. Ties keep first-encounter
    /// order (stable sort), matching the pre-batch implementation
    /// bit for bit.
    pub fn top_k(&self) -> Vec<(K, u64)> {
        // The scratch is cleared before use, so poisoned leftovers
        // from an earlier panic cannot leak into this query.
        let mut scratch = self
            .topk_scratch
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let TopKScratch { seen, candidates } = &mut *scratch;
        // `clear` keeps the allocations: across polls the dedup set and
        // the candidate buffer reach a steady capacity (≤ W·k entries)
        // and stop allocating.
        seen.clear();
        candidates.clear();
        for epoch in &self.epochs {
            for (key, _) in epoch.top_k() {
                if seen.insert(key) {
                    let est = self.query(&key);
                    candidates.push((key, est));
                }
            }
        }
        candidates.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        candidates.truncate(self.cfg.k);
        // The caller owns its report; only this exact-size copy leaves.
        candidates.clone()
    }

    /// The live epochs, oldest first (the newest — still accumulating —
    /// epoch is last). Closed epochs are immutable until the next
    /// [`SlidingTopK::rotate`]; the telemetry exporter streams them onto
    /// the wire through this view.
    pub fn epoch_iter(
        &self,
    ) -> impl DoubleEndedIterator<Item = &ParallelTopK<K>> + ExactSizeIterator {
        self.epochs.iter()
    }

    /// Rebuilds a window from externally supplied epochs (oldest first)
    /// — the collector-side constructor: a decoded
    /// [`WindowFrame`](crate::wire::WindowFrame) becomes a queryable
    /// replica of the switch's ring. `rotations` restores the rotation
    /// counter so delta reassembly can continue from here.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `epochs` is empty, or more epochs are
    /// supplied than the window holds.
    pub fn from_epochs(
        cfg: HkConfig,
        window: usize,
        rotations: u64,
        epochs: Vec<ParallelTopK<K>>,
    ) -> Self {
        assert!(window > 0, "window must span at least one epoch");
        assert!(
            !epochs.is_empty() && epochs.len() <= window,
            "epoch count must be in 1..=window"
        );
        Self {
            epochs: epochs.into(),
            cfg,
            window,
            rotations,
            closed_cache: Mutex::new(HashMap::new()),
            topk_scratch: Mutex::new(TopKScratch::default()),
            export_shadow: None,
            export_ops: AtomicU64::new(0),
            export_bytes: AtomicU64::new(0),
        }
    }

    /// Applies a remotely *closed* epoch to this replica: installs
    /// `final_epoch` as the definitive state of the current newest
    /// epoch, then crosses the period boundary exactly like
    /// [`SlidingTopK::rotate`] (evict-and-recycle once the ring is
    /// full, fresh empty newest, rotation counter bumped, caches
    /// invalidated).
    ///
    /// This is the collector's delta-reassembly step: a switch that
    /// ships only its just-closed epoch per rotation keeps the replica
    /// ring bit-identical to its own — the fresh epoch both sides open
    /// is empty, and every closed epoch is the shipped final state.
    pub fn commit_epoch(&mut self, final_epoch: ParallelTopK<K>) {
        *self.newest_mut() = final_epoch;
        self.rotate();
    }

    /// Accounted memory: `window` full instances (the epoch ring's cost).
    pub fn memory_bytes(&self) -> usize {
        let per_epoch = self
            .epochs
            .front()
            .expect("at least one epoch is always live")
            .memory_bytes();
        per_epoch * self.window
    }

    /// Merges another window (same span, same rotation phase) into this
    /// one, epoch by epoch under [`MergeMode::Sum`](crate::merge::MergeMode::Sum)
    /// semantics — the shrink half of a reshard, where two shard
    /// windows that observed disjoint sub-streams fold into one
    /// survivor. The engine rotates shards in lockstep
    /// ([`rotate_all`](crate::ShardedEngine::rotate_all)), so shard
    /// windows always share phase; anything else is a
    /// [`MergeError::WindowMismatch`].
    pub fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.window != other.window
            || self.rotations != other.rotations
            || self.epochs.len() != other.epochs.len()
        {
            return Err(MergeError::WindowMismatch);
        }
        for (mine, theirs) in self.epochs.iter_mut().zip(other.epochs.iter()) {
            mine.merge_from(theirs)?;
        }
        // Closed-epoch sums changed and the shadow no longer matches
        // any epoch this window will close.
        self.cache().clear();
        self.export_shadow = None;
        Ok(())
    }

    /// Keeps only the monitored flows for which `keep` returns true, in
    /// every live epoch; the per-epoch sketches are untouched (see
    /// [`ParallelTopK::retain_monitored`]).
    pub fn retain_monitored(&mut self, keep: &mut dyn FnMut(&K) -> bool) {
        for epoch in self.epochs.iter_mut() {
            epoch.retain_monitored(keep);
        }
        self.cache().clear();
        self.export_shadow = None;
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for SlidingTopK<K> {
    fn insert(&mut self, key: &K) {
        SlidingTopK::insert(self, key);
    }

    fn insert_batch(&mut self, keys: &[K]) {
        SlidingTopK::insert_batch(self, keys);
    }

    fn query(&self, key: &K) -> u64 {
        SlidingTopK::query(self, key)
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        SlidingTopK::top_k(self)
    }

    fn memory_bytes(&self) -> usize {
        SlidingTopK::memory_bytes(self)
    }

    fn name(&self) -> &'static str {
        "HK-Sliding"
    }
}

impl<K: FlowKey> EpochRotate for SlidingTopK<K> {
    fn rotate_epoch(&mut self) {
        self.rotate();
    }
}

impl<K: FlowKey> PreparedInsert<K> for SlidingTopK<K> {
    fn hash_spec(&self) -> HashSpec {
        self.newest().hash_spec()
    }

    fn insert_prepared(&mut self, key: &K, p: &PreparedKey) {
        self.newest_mut().insert_prepared(key, p);
    }

    fn insert_prepared_batch(&mut self, keys: &[K], prepared: &[PreparedKey]) {
        // All epochs share the hash spec, so an upstream stage's
        // prepared batch lands in the newest epoch without re-hashing
        // (sharded windowed ingest rides this).
        self.newest_mut().insert_prepared_batch(keys, prepared);
    }

    fn consumes_prepared(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).k(k).seed(5).build()
    }

    #[test]
    #[should_panic(expected = "window must span")]
    fn zero_window_panics() {
        let _ = SlidingTopK::<u64>::new(cfg(64, 4), 0);
    }

    #[test]
    fn startup_fewer_epochs_than_window() {
        let mut win = SlidingTopK::<u64>::new(cfg(64, 4), 4);
        assert_eq!(win.live_epochs(), 1);
        win.rotate();
        win.rotate();
        assert_eq!(win.live_epochs(), 3);
        assert_eq!(win.rotations(), 2);
    }

    #[test]
    fn live_epochs_capped_at_window() {
        let mut win = SlidingTopK::<u64>::new(cfg(64, 4), 3);
        for _ in 0..10 {
            win.rotate();
        }
        assert_eq!(win.live_epochs(), 3);
    }

    #[test]
    fn old_elephants_expire() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 2);
        for _ in 0..5000 {
            win.insert(&1);
        }
        assert!(win.query(&1) > 0);
        win.rotate();
        assert!(win.query(&1) > 0, "still inside the 2-epoch window");
        win.rotate();
        assert_eq!(win.query(&1), 0, "expired after sliding out");
        assert!(win.top_k().iter().all(|(k, _)| *k != 1));
    }

    #[test]
    fn window_estimate_sums_epochs() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 3);
        for _ in 0..100 {
            win.insert(&7);
        }
        win.rotate();
        for _ in 0..250 {
            win.insert(&7);
        }
        assert_eq!(win.query(&7), 350, "uncontended epochs sum exactly");
    }

    #[test]
    fn closed_cache_does_not_hide_live_traffic() {
        // A repeated query must keep seeing the newest epoch's growth:
        // only the closed epochs are cached.
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 3);
        for _ in 0..100 {
            win.insert(&9);
        }
        win.rotate();
        assert_eq!(win.query(&9), 100);
        for _ in 0..50 {
            win.insert(&9);
        }
        assert_eq!(win.query(&9), 150, "newest-epoch traffic visible at once");
    }

    #[test]
    fn no_overestimation_over_window() {
        use std::collections::HashMap;
        // Per-epoch ground truth in a ring rotated alongside the sketch
        // window, so the assertion is against the *true live-window*
        // count — strictly tighter than the stream total once epochs
        // have slid out.
        let window = 3usize;
        let mut win = SlidingTopK::<u64>::new(cfg(128, 8), window);
        let mut truth_ring: VecDeque<HashMap<u64, u64>> = VecDeque::from([HashMap::new()]);
        let mut stream_total: HashMap<u64, u64> = HashMap::new();
        let mut state = 13u64;
        for step in 0..30_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 8
            } else {
                100 + state % 2000
            };
            win.insert(&f);
            *truth_ring.back_mut().unwrap().entry(f).or_insert(0) += 1;
            *stream_total.entry(f).or_insert(0) += 1;
            if step % 5000 == 4999 {
                win.rotate();
                if truth_ring.len() == window {
                    truth_ring.pop_front();
                }
                truth_ring.push_back(HashMap::new());
            }
        }
        assert!(win.rotations() > window as u64, "window must have slid");
        let window_truth = |f: u64| -> u64 { truth_ring.iter().filter_map(|m| m.get(&f)).sum() };
        let mut tighter_than_total = false;
        for (f, est) in win.top_k() {
            let live = window_truth(f);
            assert!(est <= live, "flow {f}: {est} > live-window truth {live}");
            tighter_than_total |= live < stream_total[&f];
        }
        assert!(
            tighter_than_total,
            "ring truth should be tighter than the stream total for some flow"
        );
    }

    #[test]
    fn closed_cache_is_bounded_and_capped_queries_stay_exact() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 2);
        for _ in 0..100 {
            win.insert(&1);
        }
        win.rotate();
        // Probe far more distinct flows than the cap admits.
        let cap = win.closed_cache_cap();
        for f in 0..(cap as u64 * 3) {
            let _ = win.query(&(1_000_000 + f));
        }
        assert!(
            win.cache().len() <= cap,
            "cache grew past its cap: {} > {cap}",
            win.cache().len()
        );
        // Queries past the cap still answer correctly (uncached path).
        assert_eq!(win.query(&1), 100);
    }

    #[test]
    fn window_is_send_and_sync() {
        // The closed-epoch cache must not cost the auto-traits: shared
        // references to a window are usable across threads like every
        // other algorithm in the workspace.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SlidingTopK<u64>>();
    }

    #[test]
    fn persistent_elephant_spans_epochs() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 3);
        let mut mouse = 1000u64;
        for _ in 0..3 {
            for _ in 0..2000 {
                win.insert(&42);
                win.insert(&mouse);
                mouse += 1;
            }
            win.rotate();
        }
        let top = win.top_k();
        assert_eq!(top[0].0, 42);
        assert!(
            top[0].1 > 3000,
            "window estimate spans epochs: {}",
            top[0].1
        );
        assert!(top[0].1 <= 6000);
    }

    #[test]
    fn memory_scales_with_window() {
        let one = SlidingTopK::<u64>::new(cfg(128, 4), 1);
        let four = SlidingTopK::<u64>::new(cfg(128, 4), 4);
        assert_eq!(four.memory_bytes(), 4 * one.memory_bytes());
    }

    #[test]
    fn with_memory_splits_budget_across_epochs() {
        let win = SlidingTopK::<u64>::with_memory(64 * 1024, 10, 3, 4);
        assert_eq!(win.window(), 4);
        // The whole ring is accounted roughly the given budget (rounding
        // slack from the width derivation).
        assert!(win.memory_bytes() <= 64 * 1024);
        assert!(win.memory_bytes() >= 32 * 1024);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut win = SlidingTopK::<u64>::new(cfg(64, 4), 2);
            for i in 0..20_000u64 {
                win.insert(&(i % 50));
                if i % 4000 == 3999 {
                    win.rotate();
                }
            }
            win.top_k()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_ingest_matches_scalar() {
        // Full differential coverage lives in tests/window_differential.rs;
        // this is the in-module smoke check.
        let stream: Vec<u64> = (0..12_000u64).map(|i| (i * 7) % 300).collect();
        let mut scalar = SlidingTopK::<u64>::new(cfg(128, 8), 3);
        let mut batched = SlidingTopK::<u64>::new(cfg(128, 8), 3);
        for (n, chunk) in stream.chunks(3000).enumerate() {
            for p in chunk {
                scalar.insert(p);
            }
            batched.insert_batch(chunk);
            if n % 2 == 1 {
                scalar.rotate();
                batched.rotate();
            }
        }
        assert_eq!(scalar.top_k(), batched.top_k());
        for f in 0..300u64 {
            assert_eq!(scalar.query(&f), batched.query(&f), "flow {f}");
        }
    }

    #[test]
    fn trait_surface_matches_inherent() {
        fn generic_drive<A: TopKAlgorithm<u64> + EpochRotate>(a: &mut A) -> Vec<(u64, u64)> {
            a.insert_batch(&[1, 1, 1, 2]);
            a.rotate_epoch();
            a.insert(&1);
            a.top_k()
        }
        let mut win = SlidingTopK::<u64>::new(cfg(128, 4), 2);
        let top = generic_drive(&mut win);
        assert_eq!(win.rotations(), 1);
        assert_eq!(top[0], (1, 4));
        assert_eq!(TopKAlgorithm::query(&win, &2), 1);
        assert_eq!(TopKAlgorithm::name(&win), "HK-Sliding");
    }
}
