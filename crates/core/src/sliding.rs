//! Sliding-window top-k — an extension beyond the paper.
//!
//! The paper's deployment model is *tumbling*: every reporting period
//! the switch ships its sketch and resets (footnote 2). Operators often
//! want the complementary *sliding* view — "the top-k flows over the
//! last W periods" — which the related-work line on CSS ("heavy hitters
//! in streams and sliding windows", Ben-Basat et al.) pursues for
//! Space-Saving. [`SlidingTopK`] provides it for HeavyKeeper with the
//! standard epoch-ring construction:
//!
//! * the window is `W` epochs; each epoch is an independent
//!   [`ParallelTopK`] over only that epoch's packets;
//! * [`SlidingTopK::insert`] feeds the newest epoch;
//! * [`SlidingTopK::rotate`] closes the newest epoch and drops the
//!   oldest — one call per period boundary (the caller owns the clock,
//!   so tests and simulations stay deterministic);
//! * a window query sums per-epoch estimates over the live epochs.
//!   Per-epoch estimates never over-estimate (Theorem 2), so the summed
//!   window estimate never over-estimates the flow's window count.
//!
//! The window's candidate set is the union of per-epoch top-k sets. A
//! flow that is top-k over the window but never top-k within any single
//! epoch can be missed — the same within-epoch granularity limit as
//! every epoch-ring scheme; widening per-epoch `k` mitigates it.
//!
//! Memory is `W`× one sketch, the usual price of sliding windows.

use std::collections::VecDeque;

use crate::config::HkConfig;
use crate::parallel::ParallelTopK;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;

/// Top-k flows over a sliding window of the last `W` epochs.
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, sliding::SlidingTopK};
/// use hk_common::TopKAlgorithm;
///
/// let cfg = HkConfig::builder().width(256).k(4).seed(1).build();
/// let mut win = SlidingTopK::<u64>::new(cfg, 3); // last 3 epochs
/// for epoch in 0..5u64 {
///     for _ in 0..1000 {
///         win.insert(&epoch); // each epoch has its own elephant
///     }
///     win.rotate();
/// }
/// let top: Vec<u64> = win.top_k().into_iter().map(|(k, _)| k).collect();
/// // Epochs 0 and 1 have slid out of the window.
/// assert!(!top.contains(&0) && !top.contains(&1));
/// assert!(top.contains(&4));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingTopK<K: FlowKey> {
    epochs: VecDeque<ParallelTopK<K>>,
    cfg: HkConfig,
    window: usize,
    rotations: u64,
}

impl<K: FlowKey> SlidingTopK<K> {
    /// Creates a window of `window` epochs, each an independent
    /// HeavyKeeper built from `cfg`.
    ///
    /// All epochs share `cfg.seed`, so a flow occupies the same buckets
    /// in every epoch — cache-friendly and required for nothing, but it
    /// keeps behaviour reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(cfg: HkConfig, window: usize) -> Self {
        assert!(window > 0, "window must span at least one epoch");
        let mut epochs = VecDeque::with_capacity(window);
        epochs.push_back(ParallelTopK::new(cfg.clone()));
        Self {
            epochs,
            cfg,
            window,
            rotations: 0,
        }
    }

    /// Number of epochs the window spans.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of epochs currently live (≤ `window`; smaller at startup).
    pub fn live_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Total period boundaries crossed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Processes one packet of flow `key` into the newest epoch.
    pub fn insert(&mut self, key: &K) {
        self.epochs
            .back_mut()
            .expect("at least one epoch is always live")
            .insert(key);
    }

    /// Crosses a period boundary: opens a fresh epoch and, once more
    /// than `window` epochs are live, forgets the oldest.
    pub fn rotate(&mut self) {
        if self.epochs.len() == self.window {
            self.epochs.pop_front();
        }
        self.epochs.push_back(ParallelTopK::new(self.cfg.clone()));
        self.rotations += 1;
    }

    /// The flow's estimated size over the window: the sum of per-epoch
    /// estimates. Never over-estimates the window count (each summand is
    /// a per-epoch lower bound, Theorem 2).
    pub fn query(&self, key: &K) -> u64 {
        self.epochs.iter().map(|e| e.query(key)).sum()
    }

    /// The top-k flows over the window, largest first.
    ///
    /// Candidates are the union of per-epoch top-k sets; each candidate
    /// is re-estimated with the window query.
    pub fn top_k(&self) -> Vec<(K, u64)> {
        let mut seen: Vec<(K, u64)> = Vec::new();
        for epoch in &self.epochs {
            for (key, _) in epoch.top_k() {
                if !seen.iter().any(|(k, _)| *k == key) {
                    let est = self.query(&key);
                    seen.push((key, est));
                }
            }
        }
        seen.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        seen.truncate(self.cfg.k);
        seen
    }

    /// Accounted memory: `window` full instances (the epoch ring's cost).
    pub fn memory_bytes(&self) -> usize {
        let per_epoch = self
            .epochs
            .front()
            .expect("at least one epoch is always live")
            .memory_bytes();
        per_epoch * self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).k(k).seed(5).build()
    }

    #[test]
    #[should_panic(expected = "window must span")]
    fn zero_window_panics() {
        let _ = SlidingTopK::<u64>::new(cfg(64, 4), 0);
    }

    #[test]
    fn startup_fewer_epochs_than_window() {
        let mut win = SlidingTopK::<u64>::new(cfg(64, 4), 4);
        assert_eq!(win.live_epochs(), 1);
        win.rotate();
        win.rotate();
        assert_eq!(win.live_epochs(), 3);
        assert_eq!(win.rotations(), 2);
    }

    #[test]
    fn live_epochs_capped_at_window() {
        let mut win = SlidingTopK::<u64>::new(cfg(64, 4), 3);
        for _ in 0..10 {
            win.rotate();
        }
        assert_eq!(win.live_epochs(), 3);
    }

    #[test]
    fn old_elephants_expire() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 2);
        for _ in 0..5000 {
            win.insert(&1);
        }
        assert!(win.query(&1) > 0);
        win.rotate();
        assert!(win.query(&1) > 0, "still inside the 2-epoch window");
        win.rotate();
        assert_eq!(win.query(&1), 0, "expired after sliding out");
        assert!(win.top_k().iter().all(|(k, _)| *k != 1));
    }

    #[test]
    fn window_estimate_sums_epochs() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 3);
        for _ in 0..100 {
            win.insert(&7);
        }
        win.rotate();
        for _ in 0..250 {
            win.insert(&7);
        }
        assert_eq!(win.query(&7), 350, "uncontended epochs sum exactly");
    }

    #[test]
    fn no_overestimation_over_window() {
        use std::collections::HashMap;
        let mut win = SlidingTopK::<u64>::new(cfg(128, 8), 3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 13u64;
        for step in 0..30_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = if state.is_multiple_of(3) {
                state % 8
            } else {
                100 + state % 2000
            };
            win.insert(&f);
            *truth.entry(f).or_insert(0) += 1;
            if step % 5000 == 4999 {
                win.rotate();
                if win.rotations() >= 3 {
                    // Window slid: restart the ground truth of the live
                    // window by replaying from scratch is complex; instead
                    // keep truth as the *stream total*, a valid upper
                    // bound for the window count.
                }
            }
        }
        for (f, est) in win.top_k() {
            assert!(est <= truth[&f], "flow {f}: {est} > {}", truth[&f]);
        }
    }

    #[test]
    fn persistent_elephant_spans_epochs() {
        let mut win = SlidingTopK::<u64>::new(cfg(256, 4), 3);
        let mut mouse = 1000u64;
        for _ in 0..3 {
            for _ in 0..2000 {
                win.insert(&42);
                win.insert(&mouse);
                mouse += 1;
            }
            win.rotate();
        }
        let top = win.top_k();
        assert_eq!(top[0].0, 42);
        assert!(
            top[0].1 > 3000,
            "window estimate spans epochs: {}",
            top[0].1
        );
        assert!(top[0].1 <= 6000);
    }

    #[test]
    fn memory_scales_with_window() {
        let one = SlidingTopK::<u64>::new(cfg(128, 4), 1);
        let four = SlidingTopK::<u64>::new(cfg(128, 4), 4);
        assert_eq!(four.memory_bytes(), 4 * one.memory_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut win = SlidingTopK::<u64>::new(cfg(64, 4), 2);
            for i in 0..20_000u64 {
                win.insert(&(i % 50));
                if i % 4000 == 3999 {
                    win.rotate();
                }
            }
            win.top_k()
        };
        assert_eq!(run(), run());
    }
}
