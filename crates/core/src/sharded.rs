//! Batch-pipelined parallel execution of the Hardware Parallel version.
//!
//! Section III-E names the Parallel version after a hardware property:
//! each array's bucket update depends only on that array, so the `d`
//! updates can execute concurrently (FPGA/ASIC pipelines do exactly
//! this). [`ShardedParallelTopK`] demonstrates that property in
//! software: packets are processed in batches, one thread per array,
//! each thread owning its array and its own decay RNG.
//!
//! The pipeline semantics differ from the strictly sequential
//! [`crate::ParallelTopK`] in one documented way: the Optimization II
//! gate inside the arrays uses the `flag`/`n_min` snapshot taken at
//! batch start (hardware pipelines see the top-k stage's state with
//! exactly this kind of lag), while the top-k admission itself runs in a
//! sequential epilogue with fresh state. With a batch size of 1 the
//! snapshot is exact. Accuracy parity at realistic batch sizes is
//! asserted by tests and the `sharded` bench.
//!
//! Dynamic expansion (Section III-F) is not supported here — adding an
//! array mid-batch would change the shard topology; construct a new
//! instance instead.

use crate::bucket::Array;
use crate::config::HkConfig;
use crate::decay::DecayTable;
use crate::sketch::{prepare_key, PreparedKey, MAX_ARRAYS};
use crate::store::TopKStore;
use hk_common::algorithm::TopKAlgorithm;
use hk_common::key::FlowKey;
use hk_common::prng::XorShift64;

/// One array plus its private decay RNG: the unit of parallelism.
#[derive(Debug, Clone)]
struct Shard {
    array: Array,
    rng: XorShift64,
}

/// Batch-parallel Hardware Parallel HeavyKeeper.
///
/// # Examples
///
/// ```
/// use heavykeeper::sharded::ShardedParallelTopK;
/// use heavykeeper::HkConfig;
/// use hk_common::TopKAlgorithm;
/// let cfg = HkConfig::builder().arrays(4).width(64).k(8).seed(1).build();
/// let mut hk = ShardedParallelTopK::<u64>::new(cfg);
/// let batch: Vec<u64> = (0..10_000).map(|i| i % 10).collect();
/// hk.insert_batch(&batch);
/// assert_eq!(hk.top_k().len(), 8);
/// ```
#[derive(Debug)]
pub struct ShardedParallelTopK<K: FlowKey> {
    shards: Vec<Shard>,
    store: TopKStore<K>,
    decay: DecayTable,
    cfg: HkConfig,
    fingerprint_mask: u32,
    counter_max: u64,
}

impl<K: FlowKey> ShardedParallelTopK<K> {
    /// Builds the sharded algorithm from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration enables Section III-F expansion
    /// (unsupported here) or exceeds [`MAX_ARRAYS`].
    pub fn new(cfg: HkConfig) -> Self {
        assert!(cfg.expansion.is_none(), "sharded variant does not support expansion");
        assert!(cfg.arrays <= MAX_ARRAYS, "at most {MAX_ARRAYS} arrays supported");
        let shards = (0..cfg.arrays)
            .map(|j| Shard {
                array: Array::new(cfg.width),
                rng: XorShift64::new(cfg.seed ^ 0xDECA_F00D ^ (j as u64) << 32),
            })
            .collect();
        let fingerprint_mask = if cfg.fingerprint_bits == 32 {
            u32::MAX
        } else {
            (1u32 << cfg.fingerprint_bits) - 1
        };
        Self {
            shards,
            store: TopKStore::new(cfg.store, cfg.k),
            decay: DecayTable::new(cfg.decay),
            fingerprint_mask,
            counter_max: cfg.counter_max(),
            cfg,
        }
    }

    fn prepare(&self, key: &K) -> PreparedKey {
        prepare_key(self.cfg.seed, self.fingerprint_mask, key.key_bytes().as_slice())
    }

    /// Processes one batch: prolog (prepare + snapshot gates), parallel
    /// per-array pass, sequential top-k epilogue.
    pub fn insert_batch(&mut self, keys: &[K]) {
        if keys.is_empty() {
            return;
        }
        // Prolog: hash every key once, snapshot the admission gates.
        let prepared: Vec<PreparedKey> = keys.iter().map(|k| self.prepare(k)).collect();
        let flags: Vec<bool> = keys.iter().map(|k| self.store.contains(k)).collect();
        let nmin = self.store.nmin();
        // Optimization II only makes sense once the store is full ("if
        // the flow were that large it would be monitored"); with free
        // slots the gate is open, which also lets flows that are new
        // within this batch grow despite the stale `flags` snapshot.
        let gate_active = self.store.is_full();

        // Parallel pass: one thread per shard, each producing its
        // per-packet counter contribution.
        let width = self.cfg.width;
        let counter_max = self.counter_max;
        let decay = &self.decay;
        let mut contributions: Vec<Vec<u64>> = Vec::with_capacity(self.shards.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(j, shard)| {
                    let prepared = &prepared;
                    let flags = &flags;
                    s.spawn(move || {
                        let mut out = vec![0u64; prepared.len()];
                        for (idx, p) in prepared.iter().enumerate() {
                            let i = p.slot(j, width);
                            let bucket = *shard.array.bucket(i);
                            if bucket.is_empty() {
                                let b = shard.array.bucket_mut(i);
                                b.fp = p.fp;
                                b.count = 1;
                                out[idx] = 1;
                            } else if bucket.fp == p.fp {
                                if !gate_active || flags[idx] || bucket.count <= nmin {
                                    let b = shard.array.bucket_mut(i);
                                    if b.count < counter_max {
                                        b.count += 1;
                                    }
                                    out[idx] = b.count;
                                }
                            } else {
                                let t = decay.threshold(bucket.count);
                                if t != 0 && shard.rng.next_u64_raw() < t {
                                    let b = shard.array.bucket_mut(i);
                                    b.count -= 1;
                                    if b.count == 0 {
                                        b.fp = p.fp;
                                        b.count = 1;
                                        out[idx] = 1;
                                    }
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                contributions.push(h.join().expect("shard thread"));
            }
        });

        // Epilogue: merge per-array contributions and run the top-k
        // admission sequentially with fresh store state.
        for (idx, key) in keys.iter().enumerate() {
            let heavy_v = contributions.iter().map(|c| c[idx]).max().unwrap_or(0);
            if self.store.contains(key) {
                self.store.update_max(key, heavy_v);
            } else if !self.store.is_full() {
                if heavy_v > 0 {
                    self.store.admit(key.clone(), heavy_v);
                }
            } else if heavy_v == self.store.nmin() + 1 {
                self.store.admit(key.clone(), heavy_v);
            }
        }
    }

    /// Number of arrays (= shards).
    pub fn arrays(&self) -> usize {
        self.shards.len()
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &HkConfig {
        &self.cfg
    }
}

impl<K: FlowKey> TopKAlgorithm<K> for ShardedParallelTopK<K> {
    fn insert(&mut self, key: &K) {
        self.insert_batch(std::slice::from_ref(key));
    }

    fn insert_all(&mut self, keys: &[K]) {
        // Default batch: large enough to amortize thread spawning.
        for chunk in keys.chunks(8192) {
            self.insert_batch(chunk);
        }
    }

    fn query(&self, key: &K) -> u64 {
        let p = self.prepare(key);
        let mut best = 0;
        for (j, shard) in self.shards.iter().enumerate() {
            let b = shard.array.bucket(p.slot(j, self.cfg.width));
            if b.fp == p.fp && b.count > best {
                best = b.count;
            }
        }
        best
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        self.store.sorted_desc()
    }

    fn memory_bytes(&self) -> usize {
        let bucket_bits = self.cfg.fingerprint_bits as usize + self.cfg.counter_bits as usize;
        self.shards.len() * self.cfg.width * bucket_bits.div_ceil(8) + self.store.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "HK-Sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelTopK;
    use hk_traffic_free::*;

    /// Tiny local workload helpers (keep `hk-traffic` out of core's deps).
    mod hk_traffic_free {
        pub fn skewed_stream(n: usize, heavy: u64, tail: u64, seed: u64) -> Vec<u64> {
            let mut state = seed.max(1);
            (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state % 2 == 0 {
                        (state >> 1) % heavy
                    } else {
                        heavy + state % tail
                    }
                })
                .collect()
        }
    }

    fn cfg(arrays: usize, w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(arrays).width(w).k(k).seed(5).build()
    }

    #[test]
    fn finds_elephants_like_sequential() {
        let stream = skewed_stream(60_000, 10, 3000, 9);
        let mut sharded = ShardedParallelTopK::<u64>::new(cfg(2, 128, 10));
        let mut seq = ParallelTopK::<u64>::new(cfg(2, 128, 10));
        sharded.insert_all(&stream);
        seq.insert_all(&stream);

        let tops: Vec<std::collections::HashSet<u64>> = [&sharded.top_k(), &seq.top_k()]
            .iter()
            .map(|t| t.iter().map(|&(f, _)| f).collect())
            .collect();
        // Both must identify the 10 heavy flows.
        for (name, top) in [("sharded", &tops[0]), ("sequential", &tops[1])] {
            let hits = top.iter().filter(|&&f| f < 10).count();
            assert!(hits >= 9, "{name} found only {hits}/10: {top:?}");
        }
    }

    #[test]
    fn batch_size_one_has_exact_gating() {
        // With per-packet batches the gate snapshot is always fresh; the
        // result must match sequential semantics statistically (RNG
        // streams differ per shard, so only aggregate behaviour agrees).
        // Keep this small: every packet is its own batch (thread spawn
        // per packet), which is the semantic worst case, not a fast path.
        let stream = skewed_stream(3_000, 8, 200, 3);
        let mut sharded = ShardedParallelTopK::<u64>::new(cfg(2, 64, 8));
        for k in &stream {
            sharded.insert(k);
        }
        let hits = sharded.top_k().iter().filter(|&&(f, _)| f < 8).count();
        assert!(hits >= 7, "hits = {hits}");
    }

    #[test]
    fn no_overestimation_for_uncontended_flow() {
        let mut sharded = ShardedParallelTopK::<u64>::new(cfg(4, 256, 4));
        let batch: Vec<u64> = vec![7; 5000];
        sharded.insert_batch(&batch);
        assert!(sharded.query(&7) <= 5000);
        assert!(sharded.query(&7) >= 4999, "uncontended flow should count fully");
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut sharded = ShardedParallelTopK::<u64>::new(cfg(2, 16, 4));
        sharded.insert_batch(&[]);
        assert!(sharded.top_k().is_empty());
    }

    #[test]
    fn more_arrays_more_shards() {
        let sharded = ShardedParallelTopK::<u64>::new(cfg(8, 32, 4));
        assert_eq!(sharded.arrays(), 8);
    }

    #[test]
    #[should_panic(expected = "does not support expansion")]
    fn expansion_rejected() {
        let cfg = HkConfig::builder()
            .arrays(2)
            .width(8)
            .expansion(crate::config::ExpansionPolicy::default())
            .build();
        ShardedParallelTopK::<u64>::new(cfg);
    }
}
