//! The sharded multi-core engine: one algorithm instance per thread.
//!
//! The paper scales HeavyKeeper across cores by RSS-style partitioning:
//! the NIC hashes each flow to one receive queue, and every queue's
//! packets are measured independently (Section VII). [`ShardedEngine`]
//! is that architecture in software, generalized over *every* algorithm
//! in the workspace — HK variants and baselines alike — through the
//! [`TopKAlgorithm`] trait:
//!
//! * **Routing.** Flows are hash-partitioned by a dedicated route hash
//!   (independent of any algorithm's seed), so each flow's packets all
//!   land on one shard and per-flow counts are never split.
//! * **Ingest.** Each shard is an owned algorithm instance behind its
//!   own worker thread, fed whole batches over a channel; the worker
//!   runs the shard's [`TopKAlgorithm::insert_batch`] (and with it the
//!   prepared-key prolog). No locks are touched on the hot path except
//!   each worker's own shard mutex, which is uncontended while
//!   streaming.
//! * **Merge at query.** Because flows are partitioned, the global
//!   top-k is the k largest of the union of per-shard top-ks — no
//!   cross-shard double counting. For HK shards the classic sketch
//!   [`crate::merge`] machinery is additionally available through
//!   [`ShardedEngine::merged`], which folds every shard into one
//!   instance for network-wide-style queries.
//!
//! ## Batch boundary and snapshot semantics
//!
//! Scalar [`TopKAlgorithm::insert`] calls accumulate in a per-shard
//! pending buffer and are dispatched when
//! [`ShardedEngine::batch_capacity`] packets are buffered;
//! [`TopKAlgorithm::insert_batch`] dispatches at every call boundary.
//! Any read ([`TopKAlgorithm::query`] / [`TopKAlgorithm::top_k`])
//! first dispatches pending packets and then **flushes**: it waits until
//! every shard has drained its channel, so reads always observe every
//! packet inserted before them — the pipeline lag is bounded by the
//! flush, not exposed to readers. Within one shard packets are
//! processed in arrival order by a single thread, so results are
//! deterministic: independent of scheduling, equal to running each
//! shard's sub-stream sequentially.
//!
//! ## Worker death
//!
//! A shard algorithm that panics inside `insert_batch` kills its worker
//! thread. The engine does **not** propagate that as a panic on the
//! caller thread: the shard is marked *poisoned*, [`ShardedEngine::flush`]
//! (and the non-trait ingest/rotation entry points) report it as a
//! [`ShardPoisoned`] error, packets routed to it are dropped and counted
//! in [`ShardedEngine::lost_packets`], and reads keep serving from the
//! surviving shards (a poisoned shard's flows go unreported — its state
//! may be torn mid-insert).
//!
//! ## Epoch rotation
//!
//! For epoch-organized shards (e.g. [`crate::SlidingTopK`]) the engine
//! phase-aligns period boundaries across shards:
//! [`ShardedEngine::rotate_all`] dispatches everything pending and then
//! enqueues a rotation control message behind it on every shard's
//! channel, so every shard rotates at the same point of its sub-stream
//! without a stop-the-world barrier.
//!
//! This replaces the old `ShardedParallelTopK` special case (which
//! parallelized over the `d` arrays of a single Parallel instance and
//! worked for nothing else); that name survives as a type alias.

use crate::config::HkConfig;
use crate::merge::MergeError;
use crate::minimum::MinimumTopK;
use crate::parallel::ParallelTopK;
use hk_common::algorithm::{EpochRotate, TopKAlgorithm};
use hk_common::key::FlowKey;
use hk_common::prepared::HashSpec;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Seed of the routing hash. Distinct from every algorithm seed in use
/// so shard assignment stays independent of bucket placement.
const ROUTE_SEED: u64 = 0x5EED_0F50 ^ 0xA110_C8ED;

/// Default number of scalar inserts buffered before a dispatch.
pub const DEFAULT_BATCH_CAPACITY: usize = 4096;

/// One unit of shard-worker work: a routed sub-batch, or a control
/// operation applied to the shard's algorithm in stream order (e.g. the
/// epoch rotation of [`ShardedEngine::rotate_all`]). Because the
/// channel preserves order and every shard receives the same cut — all
/// sub-batches dispatched before the op, none after — control ops stay
/// phase-aligned across shards.
enum ShardMsg<K, A> {
    Batch(Vec<K>),
    Op(Box<dyn FnOnce(&mut A) + Send>),
}

/// Error: one or more shard workers died mid-stream (the shard's
/// algorithm panicked while ingesting). The engine keeps serving from
/// the surviving shards; packets routed to a poisoned shard are
/// counted in [`ShardedEngine::lost_packets`] and dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPoisoned {
    /// Indices of the dead shards, ascending.
    pub shards: Vec<usize>,
}

impl std::fmt::Display for ShardPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard worker(s) {:?} died (algorithm panicked during ingest)",
            self.shards
        )
    }
}

impl std::error::Error for ShardPoisoned {}

struct Shard<K, A> {
    algo: Arc<Mutex<A>>,
    tx: Option<mpsc::Sender<ShardMsg<K, A>>>,
    enqueued: AtomicU64,
    processed: Arc<AtomicU64>,
    /// Set once the worker is observed dead with work outstanding (or a
    /// send into its closed channel fails); the shard is skipped from
    /// then on instead of panicking the caller thread.
    poisoned: AtomicBool,
    worker: Option<JoinHandle<()>>,
}

impl<K, A> Shard<K, A> {
    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

struct Pending<K> {
    per_shard: Vec<Vec<K>>,
    total: usize,
}

/// A multi-core top-k engine: `N` owned shards of any
/// [`TopKAlgorithm`], channel-fed with hash-partitioned batches.
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, ShardedEngine, ParallelTopK};
/// use hk_common::TopKAlgorithm;
///
/// let cfg = HkConfig::builder().width(512).k(8).seed(1).build();
/// let mut engine = ShardedEngine::parallel(&cfg, 4);
/// let batch: Vec<u64> = (0..40_000).map(|i| i % 10).collect();
/// engine.insert_batch(&batch);
/// assert_eq!(engine.top_k().len(), 8);
/// ```
pub struct ShardedEngine<K: FlowKey, A: TopKAlgorithm<K>> {
    shards: Vec<Shard<K, A>>,
    route: HashSpec,
    k: usize,
    batch_capacity: usize,
    pending: Mutex<Pending<K>>,
    /// Packets routed to a shard after its worker died (dropped, since
    /// no thread can ingest them).
    lost: AtomicU64,
}

impl<K, A> ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: TopKAlgorithm<K> + Send + 'static,
{
    /// Builds the engine from pre-configured shard instances, reporting
    /// the `k` largest flows at query time.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `k == 0`.
    pub fn from_shards(shards: Vec<A>, k: usize) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(k > 0, "k must be positive");
        let n = shards.len();
        let shards = shards
            .into_iter()
            .map(|a| {
                let algo = Arc::new(Mutex::new(a));
                let processed = Arc::new(AtomicU64::new(0));
                let (tx, rx) = mpsc::channel::<ShardMsg<K, A>>();
                let worker = {
                    let algo = Arc::clone(&algo);
                    let processed = Arc::clone(&processed);
                    std::thread::spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            let mut guard = algo.lock().expect("shard mutex");
                            match msg {
                                ShardMsg::Batch(batch) => {
                                    guard.insert_batch(&batch);
                                    processed.fetch_add(batch.len() as u64, Ordering::Release);
                                }
                                ShardMsg::Op(op) => {
                                    op(&mut guard);
                                    processed.fetch_add(1, Ordering::Release);
                                }
                            }
                        }
                    })
                };
                Shard {
                    algo,
                    tx: Some(tx),
                    enqueued: AtomicU64::new(0),
                    processed,
                    poisoned: AtomicBool::new(false),
                    worker: Some(worker),
                }
            })
            .collect();
        Self {
            shards,
            route: HashSpec::new(ROUTE_SEED, 32),
            k,
            batch_capacity: DEFAULT_BATCH_CAPACITY,
            pending: Mutex::new(Pending {
                per_shard: (0..n).map(|_| Vec::new()).collect(),
                total: 0,
            }),
            lost: AtomicU64::new(0),
        }
    }

    /// Builds the engine with `n` shards produced by `make(shard_index)`.
    pub fn from_fn(n: usize, k: usize, make: impl FnMut(usize) -> A) -> Self {
        let mut make = make;
        Self::from_shards((0..n).map(&mut make).collect(), k)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The scalar-insert buffering threshold (see the module docs).
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Overrides the scalar-insert buffering threshold.
    pub fn set_batch_capacity(&mut self, capacity: usize) {
        self.batch_capacity = capacity.max(1);
    }

    /// The shard index `key` routes to.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        let kb = key.key_bytes();
        let lane = self.route.prepare(kb.as_slice()).lane();
        ((lane as u64 * self.shards.len() as u64) >> 32) as usize
    }

    /// Runs `f` against one shard's algorithm (flushed first), for
    /// diagnostics and merging.
    ///
    /// # Panics
    ///
    /// Panics if the shard is poisoned (its worker died mid-ingest and
    /// its state may be torn); check [`ShardedEngine::poisoned_shards`]
    /// first when the engine may have taken worker deaths.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&A) -> R) -> R {
        let _ = self.dispatch_and_flush();
        assert!(
            !self.shards[shard].is_poisoned(),
            "shard {shard} is poisoned (worker died mid-ingest)"
        );
        let guard = self.shards[shard].algo.lock().expect("shard mutex");
        f(&guard)
    }

    /// Dispatches buffered scalar inserts and waits until every live
    /// shard has drained its channel. After this returns `Ok`, every
    /// packet previously inserted is reflected in shard state.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] when any shard's worker has died (its
    /// algorithm panicked during ingest). The engine stays usable: the
    /// surviving shards are fully flushed, reads keep working over
    /// them, and packets routed to dead shards are dropped and counted
    /// in [`ShardedEngine::lost_packets`].
    pub fn flush(&self) -> Result<(), ShardPoisoned> {
        self.dispatch_and_flush()
    }

    /// Indices of shards whose workers have died so far (ascending;
    /// empty in the healthy steady state). Detection happens on
    /// dispatch/flush boundaries, so call [`ShardedEngine::flush`]
    /// first for an up-to-date answer.
    pub fn poisoned_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_poisoned())
            .map(|(i, _)| i)
            .collect()
    }

    /// Packets dropped because their shard's worker was dead: packets
    /// routed to an already-poisoned shard, plus the backlog that was
    /// queued when the death was detected (best-effort — a control op
    /// in flight at the moment of death can perturb the count by its
    /// single flush unit).
    pub fn lost_packets(&self) -> u64 {
        self.lost.load(Ordering::Acquire)
    }

    /// Hands one message to a shard worker. `flush_units` is what the
    /// flush accounting waits for (batch length, or 1 for a control
    /// op); `packet_units` is how many real packets the message carries
    /// — only those count as [`ShardedEngine::lost_packets`] when the
    /// shard is dead (a dropped rotation op is not packet loss).
    fn send_to_shard(&self, idx: usize, msg: ShardMsg<K, A>, flush_units: u64, packet_units: u64) {
        let shard = &self.shards[idx];
        if shard.is_poisoned() {
            self.lost.fetch_add(packet_units, Ordering::Release);
            return;
        }
        // Send first, count on success: counting first would open a
        // window where a racing flush waits on (and a racing death
        // accounting double-counts) units that were never delivered.
        let tx = shard.tx.as_ref().expect("engine running");
        if tx.send(msg).is_ok() {
            shard.enqueued.fetch_add(flush_units, Ordering::Release);
        } else {
            // Channel closed ⇒ worker dead ⇒ receiver dropped. This
            // message never entered `enqueued`, so its loss is owned
            // here unconditionally; the queued-but-unprocessed backlog
            // is owned by whoever wins the poisoned transition (the
            // worker is dead, so `processed` is final).
            self.lost.fetch_add(packet_units, Ordering::Release);
            if shard
                .poisoned
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let target = shard.enqueued.load(Ordering::Acquire);
                let done = shard.processed.load(Ordering::Acquire);
                self.lost
                    .fetch_add(target.saturating_sub(done), Ordering::Release);
            }
        }
    }

    fn dispatch_locked(&self, pending: &mut Pending<K>) {
        if pending.total == 0 {
            return;
        }
        for (idx, buf) in pending.per_shard.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let batch = std::mem::take(buf);
            let units = batch.len() as u64;
            self.send_to_shard(idx, ShardMsg::Batch(batch), units, units);
        }
        pending.total = 0;
    }

    fn dispatch_and_flush(&self) -> Result<(), ShardPoisoned> {
        {
            let mut pending = self.pending.lock().expect("pending poisoned");
            self.dispatch_locked(&mut pending);
        }
        for shard in &self.shards {
            loop {
                if shard.is_poisoned() {
                    break;
                }
                let target = shard.enqueued.load(Ordering::Acquire);
                if shard.processed.load(Ordering::Acquire) >= target {
                    break;
                }
                // A worker that died (its algorithm panicked inside
                // insert_batch) can never catch up; poison the shard
                // instead of busy-waiting forever. Re-read the counter
                // after seeing the thread finished so a clean last
                // batch is not mistaken for death, and account the
                // backlog exactly once — whichever racing reader wins
                // the false→true transition owns it.
                if shard.worker.as_ref().is_none_or(|w| w.is_finished()) {
                    let done = shard.processed.load(Ordering::Acquire);
                    if done < target {
                        if shard
                            .poisoned
                            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            self.lost.fetch_add(target - done, Ordering::Release);
                        }
                        break;
                    }
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let dead = self.poisoned_shards();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(ShardPoisoned { shards: dead })
        }
    }

    fn route_into(&self, keys: &[K], pending: &mut Pending<K>) {
        if self.shards.len() == 1 {
            pending.per_shard[0].extend(keys.iter().cloned());
        } else {
            for key in keys {
                let s = self.shard_of(key);
                pending.per_shard[s].push(key.clone());
            }
        }
        pending.total += keys.len();
    }
}

impl<K, A> TopKAlgorithm<K> for ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: TopKAlgorithm<K> + Send + 'static,
{
    fn insert(&mut self, key: &K) {
        let s = self.shard_of(key);
        let mut pending = self.pending.lock().expect("pending poisoned");
        pending.per_shard[s].push(key.clone());
        pending.total += 1;
        if pending.total >= self.batch_capacity {
            self.dispatch_locked(&mut pending);
        }
    }

    fn insert_batch(&mut self, keys: &[K]) {
        let mut pending = self.pending.lock().expect("pending poisoned");
        self.route_into(keys, &mut pending);
        // A batch boundary is a dispatch boundary: hand every shard its
        // sub-batch now so workers overlap with the caller.
        self.dispatch_locked(&mut pending);
    }

    fn query(&self, key: &K) -> u64 {
        let _ = self.dispatch_and_flush();
        let s = self.shard_of(key);
        if self.shards[s].is_poisoned() {
            // The flow's shard died mid-ingest; its state may be torn,
            // so report "unknown" rather than a garbage estimate.
            return 0;
        }
        let guard = self.shards[s].algo.lock().expect("shard mutex");
        guard.query(key)
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        let _ = self.dispatch_and_flush();
        let mut all: Vec<(K, u64)> = Vec::new();
        for shard in &self.shards {
            if shard.is_poisoned() {
                continue; // Dead shard: its flows are unreported.
            }
            let guard = shard.algo.lock().expect("shard mutex");
            all.extend(guard.top_k());
        }
        // Flows are partitioned, so the union has no duplicates; the
        // global top-k is the k largest. Ties break on key bytes so the
        // report is deterministic.
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.key_bytes().as_slice().cmp(b.0.key_bytes().as_slice()))
        });
        all.truncate(self.k);
        all
    }

    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| {
                // A dead worker may have poisoned the mutex; its memory
                // is still allocated, so account it when readable and
                // fall back to the inner value otherwise.
                s.algo
                    .lock()
                    .map(|g| g.memory_bytes())
                    .or_else(|p| Ok::<usize, ()>(p.into_inner().memory_bytes()))
                    .ok()
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }
}

impl<K, A> ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: TopKAlgorithm<K> + EpochRotate + Send + 'static,
{
    /// Crosses one period boundary on **every** shard, phase-aligned:
    /// all pending packets are dispatched first, then a rotation
    /// control message is enqueued behind them on each shard's channel.
    /// Because workers process their channel in order and every shard
    /// receives the same cut — everything inserted before this call
    /// lands pre-rotation, everything after lands post-rotation — the
    /// shard windows advance in lockstep without stopping the world:
    /// rotation overlaps with the caller like any other batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] when dead shards were skipped (their
    /// windows no longer advance).
    pub fn rotate_all(&self) -> Result<(), ShardPoisoned> {
        {
            let mut pending = self.pending.lock().expect("pending poisoned");
            self.dispatch_locked(&mut pending);
        }
        for idx in 0..self.shards.len() {
            self.send_to_shard(
                idx,
                ShardMsg::Op(Box::new(|a: &mut A| a.rotate_epoch())),
                1,
                0,
            );
        }
        let dead = self.poisoned_shards();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(ShardPoisoned { shards: dead })
        }
    }
}

impl<K, A> EpochRotate for ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: TopKAlgorithm<K> + EpochRotate + Send + 'static,
{
    /// [`ShardedEngine::rotate_all`] through the infallible trait
    /// surface. A [`ShardPoisoned`] error is not lost, only deferred:
    /// the poisoned state is sticky, so the next
    /// [`ShardedEngine::flush`] (or [`ShardedEngine::poisoned_shards`])
    /// reports it — callers driving the engine generically should check
    /// one of those after the stream, as the CLI's windowed path does.
    fn rotate_epoch(&mut self) {
        let _ = self.rotate_all();
    }
}

impl<K: FlowKey, A: TopKAlgorithm<K>> Drop for ShardedEngine<K, A> {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None; // Close the channel; the worker loop ends.
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// Divides a configuration's width by the shard count so an `n`-shard
/// engine is accounted the same total sketch memory as one `cfg`
/// instance.
fn split_config(cfg: &HkConfig, shards: usize) -> HkConfig {
    let mut per = cfg.clone();
    per.width = (cfg.width / shards.max(1)).max(1);
    per
}

impl<K: FlowKey + Send + 'static> ShardedEngine<K, ParallelTopK<K>> {
    /// An engine of `shards` Parallel-variant instances. Each shard gets
    /// `cfg` with its width divided by the shard count, so total sketch
    /// memory matches a single `cfg` instance; all shards share `cfg`'s
    /// seed, which keeps them merge-compatible.
    pub fn parallel(cfg: &HkConfig, shards: usize) -> Self {
        let per = split_config(cfg, shards);
        Self::from_fn(shards, cfg.k, |_| ParallelTopK::new(per.clone()))
    }

    /// Folds every shard into one Parallel instance via the classic
    /// sketch merge machinery ([`MergeMode::Sum`]: shards saw disjoint
    /// packets), for network-wide-style queries over one structure.
    ///
    /// [`MergeMode::Sum`]: crate::merge::MergeMode::Sum
    pub fn merged(&self) -> Result<ParallelTopK<K>, MergeError> {
        let mut out = self.with_shard(0, |a| a.clone());
        for i in 1..self.shards() {
            let other = self.with_shard(i, |a| a.clone());
            out.merge_from(&other)?;
        }
        Ok(out)
    }
}

impl<K: FlowKey + Send + 'static> ShardedEngine<K, MinimumTopK<K>> {
    /// An engine of `shards` Minimum-variant instances (see
    /// [`ShardedEngine::parallel`] for the memory split).
    pub fn minimum(cfg: &HkConfig, shards: usize) -> Self {
        let per = split_config(cfg, shards);
        Self::from_fn(shards, cfg.k, |_| MinimumTopK::new(per.clone()))
    }

    /// Folds every shard into one Minimum instance via the sketch merge
    /// machinery.
    pub fn merged(&self) -> Result<MinimumTopK<K>, MergeError> {
        let mut out = self.with_shard(0, |a| a.clone());
        for i in 1..self.shards() {
            let other = self.with_shard(i, |a| a.clone());
            out.merge_from(&other)?;
        }
        Ok(out)
    }
}

/// The old Parallel-only sharded type, now a thin alias of the generic
/// engine (construct with [`ShardedEngine::parallel`] or
/// [`ShardedEngine::from_shards`]).
pub type ShardedParallelTopK<K> = ShardedEngine<K, ParallelTopK<K>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicTopK;

    fn skewed_stream(n: usize, heavy: u64, tail: u64, seed: u64) -> Vec<u64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(2) {
                    (state >> 1) % heavy
                } else {
                    heavy + state % tail
                }
            })
            .collect()
    }

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).k(k).seed(5).build()
    }

    #[test]
    fn finds_elephants_like_sequential() {
        let stream = skewed_stream(60_000, 10, 3000, 9);
        let mut sharded = ShardedEngine::parallel(&cfg(256, 10), 4);
        let mut seq = ParallelTopK::<u64>::new(cfg(256, 10));
        sharded.insert_batch(&stream);
        seq.insert_batch(&stream);

        for (name, top) in [("sharded", sharded.top_k()), ("sequential", seq.top_k())] {
            let hits = top.iter().filter(|&&(f, _)| f < 10).count();
            assert!(hits >= 9, "{name} found only {hits}/10: {top:?}");
        }
    }

    #[test]
    fn partitioning_preserves_exact_counts() {
        // Each flow lands on exactly one shard, so an uncontended flow's
        // count is exact — sharding must not split or double-count it.
        let mut engine = ShardedEngine::parallel(&cfg(2048, 16), 4);
        let mut batch = Vec::new();
        for f in 0..16u64 {
            for _ in 0..100 * (f + 1) {
                batch.push(f);
            }
        }
        engine.insert_batch(&batch);
        for f in 0..16u64 {
            assert_eq!(engine.query(&f), 100 * (f + 1), "flow {f}");
        }
    }

    #[test]
    fn scalar_inserts_flush_on_read() {
        let mut engine = ShardedEngine::parallel(&cfg(128, 4), 2);
        for _ in 0..10 {
            engine.insert(&7u64);
        }
        // Far below batch_capacity, yet reads must see every packet.
        assert_eq!(engine.query(&7), 10);
        assert_eq!(engine.top_k()[0], (7, 10));
    }

    #[test]
    fn deterministic_across_runs() {
        let stream = skewed_stream(30_000, 8, 500, 3);
        let run = || {
            let mut e = ShardedEngine::parallel(&cfg(128, 8), 3);
            for chunk in stream.chunks(777) {
                e.insert_batch(chunk);
            }
            e.top_k()
        };
        assert_eq!(run(), run(), "thread scheduling must not leak into results");
    }

    #[test]
    fn works_for_any_algorithm_basic() {
        let mut engine = ShardedEngine::from_fn(3, 5, |_| BasicTopK::<u64>::new(cfg(256, 5)));
        let stream = skewed_stream(30_000, 5, 1000, 7);
        engine.insert_batch(&stream);
        let top = engine.top_k();
        let hits = top.iter().filter(|&&(f, _)| f < 5).count();
        assert!(hits >= 4, "top = {top:?}");
        assert_eq!(engine.name(), "Sharded");
        assert!(engine.memory_bytes() >= 3 * BasicTopK::<u64>::new(cfg(256, 5)).memory_bytes());
    }

    #[test]
    fn merged_view_uses_sketch_merge() {
        let mut engine = ShardedEngine::parallel(&cfg(1024, 8), 4);
        let mut batch = Vec::new();
        for f in 0..8u64 {
            for _ in 0..200 {
                batch.push(f);
            }
        }
        engine.insert_batch(&batch);
        let merged = engine.merged().expect("shards share config");
        for f in 0..8u64 {
            use hk_common::algorithm::TopKAlgorithm;
            assert_eq!(merged.query(&f), 200, "flow {f} after merge");
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut engine = ShardedEngine::<u64, _>::parallel(&cfg(16, 4), 2);
        engine.insert_batch(&[]);
        assert!(engine.top_k().is_empty());
    }

    #[test]
    fn alias_still_names_the_parallel_engine() {
        let engine: ShardedParallelTopK<u64> = ShardedEngine::parallel(&cfg(64, 4), 2);
        assert_eq!(engine.shards(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::<u64, ParallelTopK<u64>>::from_shards(vec![], 4);
    }

    /// An algorithm that blows up on ingest, to exercise worker-death
    /// detection.
    struct Exploder;

    impl TopKAlgorithm<u64> for Exploder {
        fn insert(&mut self, _key: &u64) {
            panic!("boom");
        }
        fn query(&self, _key: &u64) -> u64 {
            0
        }
        fn top_k(&self) -> Vec<(u64, u64)> {
            Vec::new()
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "Exploder"
        }
    }

    #[test]
    fn dead_worker_poisons_shard_instead_of_panicking() {
        let mut engine = ShardedEngine::from_shards(vec![Exploder], 1);
        engine.insert_batch(&[1u64]);
        // The worker panicked on the batch; the flush must surface that
        // as an inspectable error rather than spin forever or panic the
        // caller thread.
        let err = engine.flush().expect_err("dead worker must be reported");
        assert_eq!(err.shards, vec![0]);
        assert_eq!(engine.poisoned_shards(), vec![0]);
        assert!(err.to_string().contains("died"), "err = {err}");
        // Reads degrade to the surviving shards (none here) instead of
        // hanging or panicking.
        assert_eq!(engine.query(&1), 0);
        assert!(engine.top_k().is_empty());
        // Further ingest routed to the dead shard is dropped + counted.
        engine.insert_batch(&[2u64, 3u64]);
        assert!(engine.flush().is_err());
        assert!(
            engine.lost_packets() >= 2,
            "lost = {}",
            engine.lost_packets()
        );
    }

    #[test]
    fn healthy_engine_reports_no_poisoned_shards() {
        let mut engine = ShardedEngine::parallel(&cfg(64, 4), 2);
        engine.insert_batch(&[1u64, 2, 3]);
        engine.flush().expect("healthy shards flush cleanly");
        assert!(engine.poisoned_shards().is_empty());
        assert_eq!(engine.lost_packets(), 0);
    }

    #[test]
    fn surviving_shards_keep_serving_after_one_death() {
        // Shard 0 explodes on its first packet; shard 1 is a real HK
        // instance. Flows routed to shard 1 must stay queryable.
        enum Mixed {
            Bad(Exploder),
            Good(Box<ParallelTopK<u64>>),
        }
        impl TopKAlgorithm<u64> for Mixed {
            fn insert(&mut self, key: &u64) {
                match self {
                    Mixed::Bad(a) => a.insert(key),
                    Mixed::Good(a) => a.insert(key),
                }
            }
            fn query(&self, key: &u64) -> u64 {
                match self {
                    Mixed::Bad(a) => a.query(key),
                    Mixed::Good(a) => a.query(key),
                }
            }
            fn top_k(&self) -> Vec<(u64, u64)> {
                match self {
                    Mixed::Bad(a) => a.top_k(),
                    Mixed::Good(a) => a.top_k(),
                }
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "Mixed"
            }
        }
        let mut engine = ShardedEngine::from_shards(
            vec![
                Mixed::Bad(Exploder),
                Mixed::Good(Box::new(ParallelTopK::new(cfg(256, 4)))),
            ],
            4,
        );
        // Two packets of each of 20 flows; routing spreads them over
        // both shards.
        let mut batch = Vec::new();
        for f in 0..20u64 {
            batch.push(f);
            batch.push(f);
        }
        assert!(
            batch.iter().any(|f| engine.shard_of(f) == 0)
                && batch.iter().any(|f| engine.shard_of(f) == 1),
            "stream must hit both shards"
        );
        engine.insert_batch(&batch);
        let err = engine.flush().expect_err("exploding shard must poison");
        assert_eq!(err.shards, vec![0]);
        // Flows on the surviving shard answer exactly.
        let mut served = 0;
        for f in &batch {
            if engine.shard_of(f) == 1 {
                assert_eq!(engine.query(f), 2, "flow {f} on surviving shard");
                served += 1;
            }
        }
        assert!(served > 0, "stream never hit the surviving shard");
        assert!(engine.top_k().iter().all(|(f, _)| engine.shard_of(f) == 1));
    }

    #[test]
    fn rotate_all_keeps_shard_windows_phase_aligned() {
        use crate::sliding::SlidingTopK;
        // A 2-epoch window over 3 shards: flows inserted before the
        // second rotate_all must be gone after the third, exactly as in
        // the single-instance window.
        let mk = || ShardedEngine::from_fn(3, 8, |_| SlidingTopK::<u64>::new(cfg(256, 8), 2));
        let mut engine = mk();
        let old: Vec<u64> = (0..6000u64).map(|i| i % 6).collect();
        let new: Vec<u64> = (0..6000u64).map(|i| 100 + i % 6).collect();
        engine.insert_batch(&old);
        engine.rotate_all().expect("healthy rotation");
        engine.insert_batch(&new);
        // Old flows still inside the 2-epoch window.
        for f in 0..6u64 {
            assert_eq!(engine.query(&f), 1000, "flow {f} still in window");
        }
        engine.rotate_all().expect("healthy rotation");
        engine.rotate_all().expect("healthy rotation");
        for f in 0..6u64 {
            assert_eq!(engine.query(&f), 0, "flow {f} must have slid out");
        }
        // Rotation and per-shard sub-streams are deterministic.
        let run = |mut e: ShardedEngine<u64, SlidingTopK<u64>>| {
            e.insert_batch(&old);
            e.rotate_all().unwrap();
            e.insert_batch(&new);
            e.top_k()
        };
        assert_eq!(run(mk()), run(mk()));
    }
}
