//! The sharded multi-core engine: one algorithm instance per thread.
//!
//! The paper scales HeavyKeeper across cores by RSS-style partitioning:
//! the NIC hashes each flow to one receive queue, and every queue's
//! packets are measured independently (Section VII). [`ShardedEngine`]
//! is that architecture in software, generalized over *every* algorithm
//! in the workspace — HK variants and baselines alike — through the
//! [`PreparedInsert`] capability (whose supertrait is
//! [`TopKAlgorithm`]):
//!
//! * **Hash-once routing.** The dispatch plane prepares each key
//!   exactly once. When every shard reports the same
//!   [`PreparedInsert::hash_spec`] **and** consumes prepared batches
//!   ([`PreparedInsert::consumes_prepared`] — the common case for HK
//!   shards, which share a seed to stay merge-compatible), the same
//!   [`PreparedKey`] that picks the shard (via [`PreparedKey::lane`],
//!   a further fold of the hash, independent of bucket placement) is
//!   **shipped to the worker**, which ingests through
//!   [`PreparedInsert::insert_prepared_batch`] — no second hash
//!   anywhere. Shards with divergent specs (e.g. per-shard seeds), or
//!   shards that would discard prepared state (non-hashing baselines),
//!   fall back to routing under a dedicated seed and worker-side
//!   `insert_batch`.
//! * **Zero-alloc dispatch.** Keys are partitioned into per-shard
//!   structure-of-arrays sub-batches (`keys` + `PreparedKey`s, plain
//!   `Copy` stores — [`FlowKey`] keys are small POD, never cloned
//!   through an allocation). Filled sub-batches travel to workers over
//!   bounded [`SpscRing`]s and the drained buffers come back over a
//!   per-shard **return ring**, so after warm-up a steady stream
//!   dispatches with no allocation at all
//!   ([`ShardedEngine::dispatch_buffers_allocated`] stops moving).
//!   A full work ring is **backpressure**: the dispatcher holds the
//!   batch until the worker frees a slot, instead of queueing without
//!   bound.
//! * **Merge at query.** Because flows are partitioned, the global
//!   top-k is the k largest of the union of per-shard top-ks — no
//!   cross-shard double counting. For HK shards the classic sketch
//!   [`crate::merge`] machinery is additionally available through
//!   [`ShardedEngine::merged`], which folds every shard into one
//!   instance for network-wide-style queries.
//!
//! ## Batch boundary and snapshot semantics
//!
//! Scalar [`TopKAlgorithm::insert`] calls accumulate in a per-shard
//! pending buffer and are dispatched when
//! [`ShardedEngine::batch_capacity`] packets are buffered;
//! [`TopKAlgorithm::insert_batch`] dispatches at every call boundary.
//! Any read ([`TopKAlgorithm::query`] / [`TopKAlgorithm::top_k`])
//! first dispatches pending packets and then **flushes**: it waits until
//! every shard has drained its ring, so reads always observe every
//! packet inserted before them — the pipeline lag is bounded by the
//! flush, not exposed to readers. Within one shard packets are
//! processed in arrival order by a single thread, so results are
//! deterministic: independent of scheduling, equal to running each
//! shard's sub-stream sequentially.
//!
//! ## Worker wakeups
//!
//! Workers spin briefly on an empty ring, then advertise themselves
//! asleep and park; the dispatcher unparks a sleeping worker only after
//! an actual push (edge-triggered — no per-send syscalls while the
//! worker is busy, unlike an mpsc channel's per-send notification).
//!
//! ## Worker death
//!
//! A shard algorithm that panics inside ingest kills its worker thread.
//! The engine does **not** propagate that as a panic on the caller
//! thread: the shard is marked *poisoned*, [`ShardedEngine::flush`]
//! (and the non-trait ingest/rotation entry points) report it as a
//! [`ShardPoisoned`] error, packets routed to it are dropped and counted
//! in [`ShardedEngine::lost_packets`], and reads keep serving from the
//! surviving shards (a poisoned shard's flows go unreported — its state
//! may be torn mid-insert).
//!
//! ## Checkpoint/respawn recovery
//!
//! Poisoning alone leaves a dead shard dark forever. With
//! [`ShardedEngine::enable_checkpoints`] the engine turns worker death
//! into a *bounded-loss, self-healing* event instead:
//!
//! * **Checkpointing.** Every shard's algorithm is periodically encoded
//!   (via [`ShardCheckpoint`] — the encoding is the algorithm's own wire
//!   format, so wire frames double as restart state) into an in-engine
//!   checkpoint slot. Checkpoint *ops* ride the work ring like any
//!   control message, so a checkpoint captures the state after exactly
//!   the packets dispatched before it — a well-defined cut of the
//!   shard's sub-stream. Cadence: every `N` dispatched batches, at
//!   every [`ShardedEngine::rotate_all`] barrier, and on demand via
//!   [`ShardedEngine::checkpoint_now`].
//! * **Respawn.** [`ShardedEngine::recover`] decodes each poisoned
//!   shard's last checkpoint, spawns a fresh worker with fresh SPSC
//!   work/return rings (the dead thread still owns clones of the old
//!   ones), re-admits the lane, and reports the *dark window* — the
//!   packets routed to the shard after the checkpoint cut, which the
//!   restored state does not include — in a [`RecoveryReport`]. With
//!   [`ShardedEngine::set_auto_recover`] the ingest entry points run
//!   the same recovery as soon as they observe a dead worker, so the
//!   stream heals without caller involvement. Reads during the dark
//!   window keep degrading to the surviving shards as before.
//! * **Fault injection.** Recovery code only exercised by hand-crafted
//!   thread aborts rots; [`ShardedEngine::set_fault_plan`] installs a
//!   deterministic [`FaultPlan`](crate::fault::FaultPlan) — kill /
//!   mid-walk / wedge at exact sub-stream positions — threaded through
//!   the worker loop, so every recovery path has a reproducible test.
//!
//! ## Epoch rotation
//!
//! For epoch-organized shards (e.g. [`crate::SlidingTopK`]) the engine
//! phase-aligns period boundaries across shards:
//! [`ShardedEngine::rotate_all`] dispatches everything pending and then
//! enqueues a rotation control message behind it on every shard's
//! ring, so every shard rotates at the same point of its sub-stream
//! without a stop-the-world barrier.
//!
//! This replaces the old `ShardedParallelTopK` special case (which
//! parallelized over the `d` arrays of a single Parallel instance and
//! worked for nothing else); that name survives as a type alias.

use crate::config::HkConfig;
use crate::fault::{FaultKind, FaultPlan, ShardFaults};
use crate::merge::MergeError;
use crate::minimum::MinimumTopK;
use crate::parallel::ParallelTopK;
use crate::reshard::{donor_range, lane_to_shard, ReshardError, ReshardReport};
use crate::spsc::{PushError, SpscRing};
use hk_common::algorithm::{
    EpochRotate, PreparedInsert, ShardCheckpoint, ShardReshard, TopKAlgorithm,
};
use hk_common::key::FlowKey;
use hk_common::prepared::{HashSpec, PreparedKey};
use hk_obs::{EventKind, ObsHub, ReshardStage, WorkerObs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Seed of the fallback routing hash, used only when shards disagree on
/// their [`PreparedInsert::hash_spec`] (so no single prepared key is
/// portable to every shard). Distinct from every algorithm seed in use
/// so shard assignment stays independent of bucket placement.
const ROUTE_SEED: u64 = 0x5EED_0F50 ^ 0xA110_C8ED;

/// Default number of scalar inserts buffered before a dispatch.
pub const DEFAULT_BATCH_CAPACITY: usize = 4096;

/// Work-ring depth per shard: how many dispatched sub-batches may be in
/// flight before the dispatcher blocks (backpressure). Small on
/// purpose — at the default batch size one slot is thousands of
/// packets, and a deep ring would only hide a slow shard behind queue
/// growth.
const WORK_RING_CAPACITY: usize = 8;

/// Return-ring depth: work ring + the buffer the worker holds + the one
/// the dispatcher is filling, so a drained buffer essentially always
/// finds a free return slot (an overflowing return drops the buffer —
/// self-correcting, the dispatcher allocates a fresh one on demand).
const RECYCLE_RING_CAPACITY: usize = WORK_RING_CAPACITY + 2;

/// How many empty polls a worker burns before parking.
const WORKER_SPIN: usize = 64;

/// What the dispatcher does when a shard's work ring is full.
///
/// The ring is deliberately shallow ([`WORK_RING_CAPACITY`] slots), so
/// a shard that falls behind fills it fast; this policy decides whether
/// the *whole* dispatch plane then runs at the slow shard's pace or the
/// slow shard's overflow is dropped. See
/// [`ShardedEngine::set_backpressure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Hold the message until the worker frees a slot — lossless, the
    /// default: dispatch throughput degrades to the slowest shard's.
    #[default]
    Block,
    /// Drop the crossing sub-batch and count its packets in
    /// [`ShardedEngine::shed_packets`] — lossy: dispatch never stalls
    /// behind one slow shard. Only packet batches are ever shed;
    /// control ops (rotation, checkpoint barriers) always block, so
    /// phase alignment and checkpoint cuts stay exact under shedding.
    Shed,
}

/// A routed sub-batch in structure-of-arrays form: flow keys and, on
/// the hash-once handoff path, their prepared hash state (index
/// aligned; empty in route-only mode). Buffers cycle dispatcher →
/// work ring → worker → return ring → dispatcher, keeping their
/// capacity, so steady-state dispatch neither allocates nor frees.
struct SubBatch<K> {
    keys: Vec<K>,
    prepared: Vec<PreparedKey>,
    /// Dispatch timestamp for the dispatch→drain latency histogram.
    /// Stamped only when an [`ObsHub`] is attached (one `Instant::now`
    /// per *batch*, at the batch boundary — never per packet), `None`
    /// otherwise.
    sent_at: Option<Instant>,
}

impl<K> SubBatch<K> {
    fn new() -> Self {
        Self {
            keys: Vec::new(),
            prepared: Vec::new(),
            sent_at: None,
        }
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.prepared.clear();
        self.sent_at = None;
    }
}

/// One unit of shard-worker work: a routed sub-batch, or a control
/// operation applied to the shard's algorithm in stream order (e.g. the
/// epoch rotation of [`ShardedEngine::rotate_all`]). Because the ring
/// preserves order and every shard receives the same cut — all
/// sub-batches dispatched before the op, none after — control ops stay
/// phase-aligned across shards.
enum ShardMsg<K, A> {
    Batch(SubBatch<K>),
    Op(Box<dyn FnOnce(&mut A) + Send>),
}

/// Error: one or more shard workers died mid-stream (the shard's
/// algorithm panicked while ingesting). The engine keeps serving from
/// the surviving shards; packets routed to a poisoned shard are
/// counted in [`ShardedEngine::lost_packets`] and dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPoisoned {
    /// Indices of the dead shards, ascending.
    pub shards: Vec<usize>,
}

impl std::fmt::Display for ShardPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard worker(s) {:?} died (algorithm panicked during ingest)",
            self.shards
        )
    }
}

impl std::error::Error for ShardPoisoned {}

/// A shard's last taken checkpoint: the encoded restart state plus the
/// routed-packet count at its cut (the value of the shard's cumulative
/// routed counter when the checkpoint op was enqueued — by ring order,
/// exactly the packets the worker had applied when it encoded).
#[derive(Clone)]
struct CheckpointSlot {
    bytes: Vec<u8>,
    packets: u64,
}

/// What one shard recovery did: which shard was respawned, where its
/// restoring checkpoint cut the sub-stream, and how many packets fell
/// in the *dark window* — routed to the shard after the checkpoint cut,
/// hence absent from the restored state. The dark window is the
/// recovery's loss bound: at most one checkpoint interval of that
/// shard's sub-stream plus whatever was routed while the shard was
/// down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Index of the respawned shard.
    pub shard: usize,
    /// Cumulative routed-packet position of the restoring checkpoint.
    pub checkpoint_packets: u64,
    /// Cumulative packets routed to the shard when recovery ran.
    pub routed_packets: u64,
    /// `routed_packets - checkpoint_packets`: the packets the restored
    /// shard never saw.
    pub dark_packets: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} respawned from checkpoint @{} pkts ({} dark of {} routed)",
            self.shard, self.checkpoint_packets, self.dark_packets, self.routed_packets
        )
    }
}

/// Error: [`ShardedEngine::recover`] could not respawn a dead shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// [`ShardedEngine::enable_checkpoints`] was never called, so there
    /// is no restore path (the engine cannot name `A`'s decoder without
    /// the [`ShardCheckpoint`] capability being captured first).
    CheckpointsDisabled,
    /// The shard died before its first checkpoint was taken.
    NoCheckpoint {
        /// The shard that has no checkpoint to restore from.
        shard: usize,
    },
    /// The shard's checkpoint bytes failed to decode. Shards recovered
    /// earlier in the same call stay recovered.
    CheckpointCorrupt {
        /// The shard whose checkpoint did not decode.
        shard: usize,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CheckpointsDisabled => {
                write!(f, "recovery requires enable_checkpoints to be called first")
            }
            Self::NoCheckpoint { shard } => {
                write!(f, "shard {shard} died before its first checkpoint")
            }
            Self::CheckpointCorrupt { shard } => {
                write!(f, "shard {shard}'s checkpoint bytes failed to decode")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

struct Shard<K, A> {
    algo: Arc<Mutex<A>>,
    /// Dispatcher → worker transport (sub-batches + control ops).
    work: Arc<SpscRing<ShardMsg<K, A>>>,
    /// Worker → dispatcher transport of drained, cleared buffers.
    recycled: Arc<SpscRing<SubBatch<K>>>,
    /// Flush units handed to the worker (batch lengths + 1 per op).
    /// Written only on the producer side, under the pending lock.
    enqueued: AtomicU64,
    /// Flush units the worker has fully applied.
    processed: Arc<AtomicU64>,
    /// True while the worker is parked on an empty ring; the dispatcher
    /// unparks (and clears) it after a push. Edge-triggered wakeups.
    sleeping: Arc<AtomicBool>,
    /// The worker's thread handle, for unparking.
    unparker: std::thread::Thread,
    /// Set once the worker is observed dead with work outstanding; the
    /// shard is skipped from then on instead of panicking the caller
    /// thread.
    poisoned: AtomicBool,
    /// Cumulative packets routed to this shard (enqueued *or* dropped
    /// dead), written on the producer side under the pending lock.
    /// Rebased to the checkpoint cut on respawn, so `routed - ckpt`
    /// is the dark window across repeated kills.
    packets_routed: AtomicU64,
    /// Cumulative packets the worker has applied, in the same rebased
    /// coordinates as `packets_routed` — the worker-side stream
    /// position fault thresholds are measured against.
    packets_done: Arc<AtomicU64>,
    /// Batches dispatched since the last scheduled checkpoint
    /// (producer side, under the pending lock).
    ckpt_batches: AtomicU64,
    /// The last taken checkpoint. Shared with in-flight checkpoint ops
    /// and preserved across respawns.
    checkpoint: Arc<Mutex<Option<CheckpointSlot>>>,
    /// This shard's slice of the installed fault plan. Preserved across
    /// respawns so repeated faults keep firing in sequence.
    faults: Arc<ShardFaults>,
    /// The worker's observation bundle, populated by
    /// [`ShardedEngine::attach_obs`] (workers spawn at construction,
    /// before any hub exists). Unset = instrumentation off: the worker
    /// pays one atomic load per batch and nothing else.
    obs: Arc<OnceLock<WorkerObs>>,
    worker: Option<JoinHandle<()>>,
}

impl<K, A> Shard<K, A> {
    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Wakes the worker iff it advertised itself asleep.
    fn wake(&self) {
        if self.sleeping.swap(false, Ordering::SeqCst) {
            self.unparker.unpark();
        }
    }
}

struct Pending<K> {
    per_shard: Vec<SubBatch<K>>,
    total: usize,
}

/// [`ShardCheckpoint::encode_checkpoint`] captured as a plain fn
/// pointer (see the `encode` field on [`ShardedEngine`]).
type EncodeFn<A> = fn(&A) -> Vec<u8>;
/// [`ShardCheckpoint::restore_checkpoint`] captured likewise.
type RestoreFn<A> = fn(&[u8]) -> Option<A>;

/// A multi-core top-k engine: `N` owned shards of any
/// [`PreparedInsert`] algorithm, fed hash-partitioned prepared
/// sub-batches over bounded SPSC rings.
///
/// # Examples
///
/// ```
/// use heavykeeper::{HkConfig, ShardedEngine, ParallelTopK};
/// use hk_common::TopKAlgorithm;
///
/// let cfg = HkConfig::builder().width(512).k(8).seed(1).build();
/// let mut engine = ShardedEngine::parallel(&cfg, 4);
/// let batch: Vec<u64> = (0..40_000).map(|i| i % 10).collect();
/// engine.insert_batch(&batch);
/// assert_eq!(engine.top_k().len(), 8);
/// ```
pub struct ShardedEngine<K: FlowKey, A: TopKAlgorithm<K>> {
    shards: Vec<Shard<K, A>>,
    /// The spec keys are prepared under on the dispatch thread: the
    /// shards' shared [`PreparedInsert::hash_spec`] in handoff mode,
    /// a dedicated routing spec otherwise.
    route: HashSpec,
    /// True when every shard shares `route` and therefore consumes the
    /// dispatcher's prepared keys directly (hash-once handoff).
    handoff: bool,
    k: usize,
    batch_capacity: usize,
    pending: Mutex<Pending<K>>,
    /// Packets routed to a shard after its worker died (dropped, since
    /// no thread can ingest them).
    lost: AtomicU64,
    /// Sub-batch buffers ever allocated (the initial per-shard set plus
    /// any allocated when the return ring came up empty). Flat after
    /// warm-up — the recycling invariant the tests pin down.
    buffers_allocated: AtomicU64,
    /// Checkpoint cadence in dispatched batches per shard; `None` until
    /// [`ShardedEngine::enable_checkpoints`].
    checkpoint_every: Option<u64>,
    /// `A`'s checkpoint encoder, captured as a plain fn pointer so the
    /// unbounded engine paths (dispatch, rotate) can schedule
    /// checkpoints without a `ShardCheckpoint` bound.
    encode: Option<EncodeFn<A>>,
    /// `A`'s checkpoint decoder, captured like `encode`.
    restore: Option<RestoreFn<A>>,
    /// When set, ingest entry points respawn dead shards themselves.
    auto_recover: bool,
    /// Every recovery this engine has performed, in order.
    recovery_log: Vec<RecoveryReport>,
    /// Full-work-ring policy (see [`BackpressurePolicy`]).
    backpressure: BackpressurePolicy,
    /// Packets dropped by [`BackpressurePolicy::Shed`] on full rings —
    /// the lossy-policy sibling of [`ShardedEngine::lost_packets`].
    shed: AtomicU64,
    /// The installed fault plan, kept so a reshard can arm shard
    /// indices the old topology never had (`None` when no plan).
    fault_plan: Option<FaultPlan>,
    /// Every reshard migration this engine has run, in order
    /// (committed and rolled back alike).
    reshard_log: Vec<ReshardReport>,
    /// The attached observability hub; `None` (the default) disables
    /// all instrumentation down to one branch per dispatched batch.
    obs: Option<Arc<ObsHub>>,
}

impl<K, A> ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: PreparedInsert<K> + Send + 'static,
{
    /// Builds the engine from pre-configured shard instances, reporting
    /// the `k` largest flows at query time.
    ///
    /// When every instance reports the same
    /// [`PreparedInsert::hash_spec`] and consumes prepared batches,
    /// the engine runs in hash-once handoff mode: keys are prepared
    /// once on the dispatch thread (routing rides
    /// [`PreparedKey::lane`]) and workers ingest the shipped prepared
    /// batches without re-hashing. Divergent specs (e.g. deliberately
    /// different per-shard seeds) or prepared-discarding shards fall
    /// back to a dedicated routing hash with worker-side
    /// `insert_batch`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `k == 0`.
    pub fn from_shards(shards: Vec<A>, k: usize) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(k > 0, "k must be positive");
        let n = shards.len();
        let first_spec = shards[0].hash_spec();
        // Handoff mode needs both halves: every shard must *accept* the
        // same prepared keys (equal specs) and actually *read* them
        // (`consumes_prepared`) — shipping 12 B/packet of prepared
        // state to an algorithm that discards it is pure overhead, so
        // such shards get routing-only dispatch instead.
        let handoff = shards
            .iter()
            .all(|s| s.hash_spec() == first_spec && s.consumes_prepared());
        let route = if handoff {
            first_spec
        } else {
            HashSpec::new(ROUTE_SEED, 32)
        };
        let shards = shards
            .into_iter()
            .map(|a| Self::spawn_shard(a, handoff))
            .collect();
        Self {
            shards,
            route,
            handoff,
            k,
            batch_capacity: DEFAULT_BATCH_CAPACITY,
            pending: Mutex::new(Pending {
                per_shard: (0..n).map(|_| SubBatch::new()).collect(),
                total: 0,
            }),
            lost: AtomicU64::new(0),
            buffers_allocated: AtomicU64::new(n as u64),
            checkpoint_every: None,
            encode: None,
            restore: None,
            auto_recover: false,
            recovery_log: Vec::new(),
            backpressure: BackpressurePolicy::Block,
            shed: AtomicU64::new(0),
            fault_plan: None,
            reshard_log: Vec::new(),
            obs: None,
        }
    }

    fn spawn_shard(algo: A, handoff: bool) -> Shard<K, A> {
        Self::spawn_shard_with(
            algo,
            handoff,
            Arc::new(Mutex::new(None)),
            Arc::new(ShardFaults::default()),
            0,
        )
    }

    /// Spawns a shard worker around `algo`, reusing the given checkpoint
    /// slot and fault schedule (fresh on first spawn, the dead shard's
    /// on respawn) and starting both packet counters at `base_packets`
    /// — the restoring checkpoint's cut, so dark-window accounting and
    /// fault thresholds stay in cumulative sub-stream coordinates across
    /// repeated kills.
    fn spawn_shard_with(
        algo: A,
        handoff: bool,
        checkpoint: Arc<Mutex<Option<CheckpointSlot>>>,
        faults: Arc<ShardFaults>,
        base_packets: u64,
    ) -> Shard<K, A> {
        let algo = Arc::new(Mutex::new(algo));
        let processed = Arc::new(AtomicU64::new(0));
        let packets_done = Arc::new(AtomicU64::new(base_packets));
        let sleeping = Arc::new(AtomicBool::new(false));
        let work = Arc::new(SpscRing::new(WORK_RING_CAPACITY));
        let recycled = Arc::new(SpscRing::new(RECYCLE_RING_CAPACITY));
        let obs: Arc<OnceLock<WorkerObs>> = Arc::new(OnceLock::new());
        let worker = {
            let algo = Arc::clone(&algo);
            let processed = Arc::clone(&processed);
            let packets_done = Arc::clone(&packets_done);
            let sleeping = Arc::clone(&sleeping);
            let work = Arc::clone(&work);
            let recycled = Arc::clone(&recycled);
            let faults = Arc::clone(&faults);
            let obs = Arc::clone(&obs);
            std::thread::spawn(move || {
                Self::worker_loop(
                    &algo,
                    &work,
                    &recycled,
                    &processed,
                    &packets_done,
                    &sleeping,
                    &faults,
                    handoff,
                    &obs,
                )
            })
        };
        let unparker = worker.thread().clone();
        Shard {
            algo,
            work,
            recycled,
            enqueued: AtomicU64::new(0),
            processed,
            sleeping,
            unparker,
            poisoned: AtomicBool::new(false),
            packets_routed: AtomicU64::new(base_packets),
            packets_done,
            ckpt_batches: AtomicU64::new(0),
            checkpoint,
            faults,
            obs,
            worker: Some(worker),
        }
    }

    /// The shard worker: drain the work ring in order, return drained
    /// buffers, park when idle. Runs until the dispatcher closes the
    /// ring (engine drop) and the backlog is drained — or an injected
    /// fault takes it down first.
    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        algo: &Mutex<A>,
        work: &SpscRing<ShardMsg<K, A>>,
        recycled: &SpscRing<SubBatch<K>>,
        processed: &AtomicU64,
        packets_done: &AtomicU64,
        sleeping: &AtomicBool,
        faults: &ShardFaults,
        handoff: bool,
        obs: &OnceLock<WorkerObs>,
    ) {
        let mut spins = 0usize;
        loop {
            match work.try_pop() {
                Some(ShardMsg::Batch(mut batch)) => {
                    spins = 0;
                    let units = batch.keys.len() as u64;
                    let applied = packets_done.load(Ordering::Relaxed);
                    if let Some((threshold, kind)) = faults.crossing(applied, units) {
                        match kind {
                            // Clean death at a batch boundary: nothing
                            // of the crossing batch is applied.
                            FaultKind::Kill => {
                                // hk-lint: allow(panic-free-worker-paths) deliberate fault injection: this panic IS the simulated worker death
                                panic!("fault injection: kill at {threshold} packets")
                            }
                            // Torn death: apply the batch up to the
                            // threshold, then die *holding* the algo
                            // mutex — sketch torn mid-stream, mutex
                            // poisoned. The worst case recovery must
                            // absorb.
                            FaultKind::MidWalk => {
                                let cut = (threshold.saturating_sub(applied) as usize)
                                    .min(batch.keys.len());
                                let mut guard = algo.lock().unwrap_or_else(PoisonError::into_inner);
                                if handoff {
                                    guard.insert_prepared_batch(
                                        &batch.keys[..cut],
                                        &batch.prepared[..cut],
                                    );
                                } else {
                                    guard.insert_batch(&batch.keys[..cut]);
                                }
                                // hk-lint: allow(panic-free-worker-paths) deliberate fault injection: dies holding the algo mutex to simulate a torn walk
                                panic!("fault injection: mid-walk at {threshold} packets")
                            }
                            // Silent stop: close the work ring from the
                            // consumer side and exit without panicking,
                            // so the dispatcher's backpressure path sees
                            // `Closed` (not `Full`) on a live-looking
                            // shard.
                            FaultKind::Wedge => {
                                work.close();
                                return;
                            }
                        }
                    }
                    {
                        // A *live* worker can only observe poison from
                        // a reader thread panicking in its `with_shard`
                        // closure (shared access — the sketch is not
                        // torn); a panic on this thread would have
                        // killed the worker already. Absorb and keep
                        // ingesting.
                        let mut guard = algo.lock().unwrap_or_else(PoisonError::into_inner);
                        if handoff {
                            guard.insert_prepared_batch(&batch.keys, &batch.prepared);
                        } else {
                            guard.insert_batch(&batch.keys);
                        }
                    }
                    // Instrumentation samples at the batch boundary:
                    // one counter bump and one histogram record per
                    // *drained batch*, and the latency clock was read
                    // at dispatch — the per-packet walk above stays
                    // timing- and counter-free.
                    if let Some(o) = obs.get() {
                        o.shard.ingest_batches.incr();
                        o.shard.ingest_packets.add(units);
                        o.batch_packets.record(units);
                        if let Some(sent) = batch.sent_at {
                            let ns = sent.elapsed().as_nanos();
                            o.latency_ns.record(u64::try_from(ns).unwrap_or(u64::MAX));
                        }
                    }
                    // `packets_done` strictly before `processed`: a
                    // flusher that observes `processed` caught up must
                    // also observe the packet position (release/acquire
                    // pairing on `processed`).
                    packets_done.fetch_add(units, Ordering::Release);
                    processed.fetch_add(units, Ordering::Release);
                    // Hand the drained buffer back for reuse; a full
                    // return ring just drops it (the dispatcher will
                    // allocate a replacement on demand).
                    batch.clear();
                    let _ = recycled.try_push(batch);
                }
                Some(ShardMsg::Op(op)) => {
                    spins = 0;
                    {
                        let mut guard = algo.lock().unwrap_or_else(PoisonError::into_inner);
                        op(&mut guard);
                    }
                    processed.fetch_add(1, Ordering::Release);
                }
                None => {
                    if work.is_closed() {
                        return; // Drained and shut down.
                    }
                    if spins < WORKER_SPIN {
                        spins += 1;
                        std::hint::spin_loop();
                        continue;
                    }
                    // Sleep protocol: advertise, re-check, park. Every
                    // access in the handshake is SeqCst, so in the
                    // total order either this re-check sees the
                    // push/close, or the other side's post-push (or
                    // post-close) `wake` sees the flag and unparks —
                    // a missed wakeup is impossible, and an unpark
                    // that wins the race just makes `park` return
                    // immediately. The generous timeout is a pure
                    // backstop, cheap enough (a few wakeups per
                    // second) that an idle engine stays idle.
                    sleeping.store(true, Ordering::SeqCst);
                    if !work.is_empty() || work.is_closed() {
                        sleeping.store(false, Ordering::SeqCst);
                        continue;
                    }
                    std::thread::park_timeout(std::time::Duration::from_millis(250));
                    sleeping.store(false, Ordering::SeqCst);
                    spins = 0;
                }
            }
        }
    }

    /// Builds the engine with `n` shards produced by `make(shard_index)`.
    pub fn from_fn(n: usize, k: usize, make: impl FnMut(usize) -> A) -> Self {
        let mut make = make;
        Self::from_shards((0..n).map(&mut make).collect(), k)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The scalar-insert buffering threshold (see the module docs).
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Overrides the scalar-insert buffering threshold.
    pub fn set_batch_capacity(&mut self, capacity: usize) {
        self.batch_capacity = capacity.max(1);
    }

    /// True when the engine ships dispatcher-prepared keys to workers
    /// (all shards share one hash spec **and** consume prepared
    /// batches); false when routing falls back to the dedicated seed
    /// and workers ingest through their own `insert_batch`.
    pub fn prepared_handoff(&self) -> bool {
        self.handoff
    }

    /// Sub-batch buffers allocated so far: the initial per-shard set
    /// plus one for every dispatch that found its shard's return ring
    /// empty. Flat after warm-up — the observable form of "steady-state
    /// dispatch allocates nothing".
    pub fn dispatch_buffers_allocated(&self) -> u64 {
        self.buffers_allocated.load(Ordering::Acquire)
    }

    /// Routes a prepared key's lane to a shard index (multiply-shift
    /// over the shard count — no modulo bias, no division). Shared
    /// with the reshard plane ([`crate::reshard`]), whose donor
    /// selection and store repartition must use the exact same fold.
    #[inline]
    fn lane_shard(&self, lane: u32) -> usize {
        lane_to_shard(lane, self.shards.len())
    }

    /// The shard index `key` routes to.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        let kb = key.key_bytes();
        self.lane_shard(self.route.prepare(kb.as_slice()).lane())
    }

    /// Runs `f` against one shard's algorithm (flushed first), for
    /// diagnostics and merging. Returns `None` when the shard is
    /// poisoned (its worker died mid-ingest and its state may be torn)
    /// — the engine degrades to the surviving shards instead of
    /// panicking; [`ShardedEngine::poisoned_shards`] names the dead
    /// ones.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&A) -> R) -> Option<R> {
        let _ = self.dispatch_and_flush();
        let s = &self.shards[shard];
        if s.is_poisoned() {
            return None;
        }
        // A poisoned algo mutex (the worker panicked holding it) means
        // the same thing as a poisoned shard: torn state, no answer.
        let guard = s.algo.lock().ok()?;
        Some(f(&guard))
    }

    /// The pending-buffer lock, recovering from poison: `Pending` is
    /// plain routed-buffer state (keys copied in, a running total), so
    /// a caller thread that panicked mid-route leaves it usable — at
    /// worst a partially routed batch that the next dispatch ships.
    /// Recovering keeps a single caller panic from wedging every later
    /// ingest and read on this engine.
    fn lock_pending(&self) -> MutexGuard<'_, Pending<K>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Dispatches buffered scalar inserts and waits until every live
    /// shard has drained its ring. After this returns `Ok`, every
    /// packet previously inserted is reflected in shard state.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] when any shard's worker has died (its
    /// algorithm panicked during ingest). The engine stays usable: the
    /// surviving shards are fully flushed, reads keep working over
    /// them, and packets routed to dead shards are dropped and counted
    /// in [`ShardedEngine::lost_packets`].
    pub fn flush(&self) -> Result<(), ShardPoisoned> {
        self.dispatch_and_flush()
    }

    /// Indices of shards whose workers have died so far (ascending;
    /// empty in the healthy steady state). Detection happens on
    /// dispatch/flush boundaries, so call [`ShardedEngine::flush`]
    /// first for an up-to-date answer.
    pub fn poisoned_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_poisoned())
            .map(|(i, _)| i)
            .collect()
    }

    /// Packets dropped because their shard's worker was dead: packets
    /// routed to an already-poisoned shard, plus the backlog that was
    /// queued when the death was detected (best-effort — a control op
    /// in flight at the moment of death can perturb the count by its
    /// single flush unit).
    pub fn lost_packets(&self) -> u64 {
        self.lost.load(Ordering::Acquire)
    }

    /// Packets dropped by [`BackpressurePolicy::Shed`] when their
    /// shard's work ring was full — the lossy-policy counter next to
    /// [`ShardedEngine::lost_packets`] (which counts dead-shard drops;
    /// the two never overlap). Always zero under the default
    /// [`BackpressurePolicy::Block`].
    pub fn shed_packets(&self) -> u64 {
        self.shed.load(Ordering::Acquire)
    }

    /// Attaches an observability hub: every stage of the engine starts
    /// reporting into it — dispatch/ingest counters, dispatch→drain
    /// latency and batch-size histograms, and journal events for
    /// worker death, recovery, reshard phases and shedding. Idempotent
    /// per shard slot (the worker's bundle is set once); shard slots
    /// created later (reshard growth, respawn) are wired automatically.
    ///
    /// With no hub attached (the default) the hot path pays one branch
    /// per dispatched batch and one relaxed load per drained batch —
    /// the `obs_overhead` bench pins this within noise.
    pub fn attach_obs(&mut self, hub: Arc<ObsHub>) {
        for (idx, shard) in self.shards.iter().enumerate() {
            let _ = shard.obs.set(hub.worker(idx));
        }
        self.obs = Some(hub);
    }

    /// The attached hub, if any.
    pub fn obs(&self) -> Option<&Arc<ObsHub>> {
        self.obs.as_ref()
    }

    /// Publishes the engine-owned gauge totals (SPSC ring push/pop
    /// counts, lost and shed packets) into the attached hub and returns
    /// a coherent snapshot. `None` when no hub is attached.
    pub fn obs_snapshot(&self) -> Option<hk_obs::Snapshot> {
        let hub = self.obs.as_ref()?;
        let mut pushes = 0u64;
        let mut pops = 0u64;
        for shard in &self.shards {
            pushes += shard.work.pushes() + shard.recycled.pushes();
            pops += shard.work.pops() + shard.recycled.pops();
        }
        hub.stages.ring_pushes.set(pushes);
        hub.stages.ring_pops.set(pops);
        hub.stages.lost_packets.set(self.lost_packets());
        hub.stages.shed_packets.set(self.shed_packets());
        Some(hub.snapshot())
    }

    /// Journals a reshard phase transition (no-op without a hub).
    fn obs_reshard_phase(&self, from: usize, to: usize, stage: ReshardStage) {
        if let Some(hub) = &self.obs {
            hub.stages.reshard_phases.incr();
            hub.journal.record(EventKind::ReshardPhase {
                from_shards: from as u64,
                to_shards: to as u64,
                stage,
            });
        }
    }

    /// The current full-ring policy.
    pub fn backpressure(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Sets the full-ring policy (see [`BackpressurePolicy`]). A shed
    /// sub-batch's buffer is dropped with it, so sustained shedding
    /// re-allocates replacement buffers at the shedding rate —
    /// shedding trades the zero-alloc steady state for liveness.
    pub fn set_backpressure(&mut self, policy: BackpressurePolicy) {
        self.backpressure = policy;
    }

    /// Accounts a newly detected worker death exactly once: whichever
    /// racing observer wins the false→true transition owns the
    /// enqueued-but-unprocessed backlog (the worker is dead, so
    /// `processed` is final).
    fn poison_shard(&self, idx: usize) {
        let shard = &self.shards[idx];
        if shard
            .poisoned
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let target = shard.enqueued.load(Ordering::Acquire);
            let done = shard.processed.load(Ordering::Acquire);
            self.lost
                .fetch_add(target.saturating_sub(done), Ordering::Release);
            if let Some(hub) = &self.obs {
                hub.shard(idx).worker_deaths.incr();
                hub.journal
                    .record(EventKind::WorkerDeath { shard: idx as u64 });
            }
        }
    }

    /// Hands one message to a shard worker, blocking on a full ring
    /// (backpressure) until the worker frees a slot or is found dead.
    /// `flush_units` is what the flush accounting waits for (batch
    /// length, or 1 for a control op); `packet_units` is how many real
    /// packets the message carries — only those count as
    /// [`ShardedEngine::lost_packets`] when the shard is dead (a
    /// dropped rotation op is not packet loss).
    ///
    /// Producer-side ring access: all callers hold the pending lock,
    /// which is the SPSC producer-exclusivity discipline.
    fn send_to_shard(&self, idx: usize, msg: ShardMsg<K, A>, flush_units: u64, packet_units: u64) {
        let shard = &self.shards[idx];
        // Routed = destined for this shard, delivered or not: the dark
        // window a recovery reports is everything sent after the
        // checkpoint cut, including packets dropped while the shard was
        // down.
        shard
            .packets_routed
            .fetch_add(packet_units, Ordering::Release);
        if shard.is_poisoned() {
            self.lost.fetch_add(packet_units, Ordering::Release);
            return;
        }
        let mut msg = msg;
        loop {
            match shard.work.try_push(msg) {
                Ok(()) => {
                    // Count after a successful push: counting first
                    // would open a window where a racing flush waits on
                    // (and a racing death accounting double-counts)
                    // units that were never delivered.
                    shard.enqueued.fetch_add(flush_units, Ordering::Release);
                    shard.wake();
                    return;
                }
                Err(err) => {
                    // Full ring: real backpressure while the worker is
                    // alive; a dead worker can never free a slot, so
                    // poison instead of spinning forever. (Closed only
                    // happens mid-drop; treat it like death.)
                    let closed = matches!(err, PushError::Closed(_));
                    if closed || shard.worker.as_ref().is_none_or(|w| w.is_finished()) {
                        // This message never entered `enqueued`, so its
                        // loss is owned here unconditionally.
                        self.lost.fetch_add(packet_units, Ordering::Release);
                        self.poison_shard(idx);
                        return;
                    }
                    msg = err.into_inner();
                    // Shed policy: a live-but-slow shard's overflow
                    // batch is dropped instead of stalling the whole
                    // dispatch plane. Ops always block — a shed
                    // rotation or checkpoint barrier would tear the
                    // phase alignment shedding is meant to preserve.
                    if self.backpressure == BackpressurePolicy::Shed
                        && matches!(msg, ShardMsg::Batch(_))
                    {
                        self.shed.fetch_add(packet_units, Ordering::Release);
                        if let Some(hub) = &self.obs {
                            hub.journal.record(EventKind::Shed {
                                shard: idx as u64,
                                packets: packet_units,
                            });
                        }
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Grabs an empty sub-batch buffer for shard `idx`: recycled from
    /// the worker's return ring when available, freshly allocated (and
    /// counted) only when the cycle has not converged yet.
    fn take_buffer(&self, idx: usize) -> SubBatch<K> {
        match self.shards[idx].recycled.try_pop() {
            Some(buf) => {
                debug_assert!(buf.keys.is_empty(), "worker returns cleared buffers");
                buf
            }
            None => {
                self.buffers_allocated.fetch_add(1, Ordering::Release);
                SubBatch::new()
            }
        }
    }

    fn dispatch_locked(&self, pending: &mut Pending<K>) {
        if pending.total == 0 {
            return;
        }
        for idx in 0..pending.per_shard.len() {
            if pending.per_shard[idx].keys.is_empty() {
                continue;
            }
            if self.shards[idx].is_poisoned() {
                // Dead shard: its packets are lost either way, so drop
                // them in place — clearing keeps the buffer (and its
                // capacity), taking no replacement, so a long-lived
                // engine with one dead shard stays zero-alloc. Still
                // routed, for dark-window accounting.
                let units = pending.per_shard[idx].keys.len() as u64;
                self.shards[idx]
                    .packets_routed
                    .fetch_add(units, Ordering::Release);
                self.lost.fetch_add(units, Ordering::Release);
                pending.per_shard[idx].clear();
                continue;
            }
            let replacement = self.take_buffer(idx);
            let mut batch = std::mem::replace(&mut pending.per_shard[idx], replacement);
            let units = batch.keys.len() as u64;
            if let Some(hub) = &self.obs {
                hub.stages.dispatch_batches.incr();
                hub.stages.dispatch_packets.add(units);
                // One clock read per dispatched batch, at the batch
                // boundary — the worker computes the elapsed
                // dispatch→drain time when it drains this buffer.
                batch.sent_at = Some(Instant::now());
            }
            self.send_to_shard(idx, ShardMsg::Batch(batch), units, units);
            // Scheduled checkpoint: every `checkpoint_every` dispatched
            // batches, the shard encodes itself right behind the work
            // it just received.
            if let Some(every) = self.checkpoint_every {
                let n = self.shards[idx]
                    .ckpt_batches
                    .fetch_add(1, Ordering::Relaxed)
                    + 1;
                if n >= every {
                    self.shards[idx].ckpt_batches.store(0, Ordering::Relaxed);
                    self.enqueue_checkpoint(idx);
                }
            }
        }
        pending.total = 0;
    }

    /// Enqueues a checkpoint op on shard `idx`'s ring (caller holds the
    /// pending lock — producer discipline). The op rides behind every
    /// batch dispatched so far, so the state it encodes is exactly the
    /// routed-counter cut captured here.
    fn enqueue_checkpoint(&self, idx: usize) {
        let Some(encode) = self.encode else { return };
        let shard = &self.shards[idx];
        if shard.is_poisoned() {
            return;
        }
        let at_packets = shard.packets_routed.load(Ordering::Acquire);
        let slot = Arc::clone(&shard.checkpoint);
        let op = move |a: &mut A| {
            let bytes = encode(a);
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(CheckpointSlot {
                bytes,
                packets: at_packets,
            });
        };
        if let Some(hub) = &self.obs {
            hub.stages.checkpoints.incr();
        }
        self.send_to_shard(idx, ShardMsg::Op(Box::new(op)), 1, 0);
    }

    fn dispatch_and_flush(&self) -> Result<(), ShardPoisoned> {
        {
            let mut pending = self.lock_pending();
            self.dispatch_locked(&mut pending);
        }
        for (idx, shard) in self.shards.iter().enumerate() {
            loop {
                if shard.is_poisoned() {
                    break;
                }
                let target = shard.enqueued.load(Ordering::Acquire);
                if shard.processed.load(Ordering::Acquire) >= target {
                    break;
                }
                // A worker that died (its algorithm panicked inside
                // ingest) can never catch up; poison the shard instead
                // of busy-waiting forever. Re-read the counter after
                // seeing the thread finished so a clean last batch is
                // not mistaken for death.
                if shard.worker.as_ref().is_none_or(|w| w.is_finished()) {
                    let done = shard.processed.load(Ordering::Acquire);
                    if done < target {
                        self.poison_shard(idx);
                        break;
                    }
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let dead = self.poisoned_shards();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(ShardPoisoned { shards: dead })
        }
    }

    /// The single-pass partition: hash each key **once**, route by the
    /// prepared lane, and store key (+ prepared state in handoff mode)
    /// into the shard's recycled buffer — plain `Copy` stores, no
    /// clones, no allocation once buffer capacities have converged.
    fn route_into(&self, keys: &[K], pending: &mut Pending<K>) {
        let one_shard = self.shards.len() == 1;
        if one_shard && !self.handoff {
            // Routing is vacuous and the worker re-hashes anyway: a
            // straight copy keeps the degenerate 1-shard route-only
            // engine at one hash per packet (the worker's).
            pending.per_shard[0].keys.extend_from_slice(keys);
            pending.total += keys.len();
            return;
        }
        for key in keys {
            let kb = key.key_bytes();
            let p = self.route.prepare(kb.as_slice());
            let s = if one_shard {
                0
            } else {
                self.lane_shard(p.lane())
            };
            let buf = &mut pending.per_shard[s];
            buf.keys.push(*key);
            if self.handoff {
                buf.prepared.push(p);
            }
        }
        pending.total += keys.len();
    }

    /// Turns on checkpoint/respawn recovery: captures `A`'s
    /// [`ShardCheckpoint`] encode/decode as engine state, schedules a
    /// checkpoint every `every_batches` dispatched batches per shard
    /// (plus one at every [`ShardedEngine::rotate_all`] barrier), and
    /// takes an immediate baseline checkpoint of every live shard — so
    /// any later death, however early, has something to restore from.
    ///
    /// The dark-window loss bound is the cadence knob: a shard respawn
    /// loses at most `every_batches` batches of that shard's sub-stream
    /// (plus whatever was routed while it was down), at the cost of one
    /// encode per interval.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] if dead shards were found while taking
    /// the baseline (the live ones are still checkpointed and
    /// recoverable).
    pub fn enable_checkpoints(&mut self, every_batches: u64) -> Result<(), ShardPoisoned>
    where
        A: ShardCheckpoint,
    {
        let encode = A::encode_checkpoint as fn(&A) -> Vec<u8>;
        self.encode = Some(encode);
        self.restore = Some(A::restore_checkpoint as fn(&[u8]) -> Option<A>);
        self.checkpoint_every = Some(every_batches.max(1));
        let res = self.dispatch_and_flush();
        for shard in &self.shards {
            if shard.is_poisoned() {
                continue;
            }
            // Flushed + `&mut self`: the worker is idle and no ingest
            // races, so encoding synchronously here is exact.
            let Ok(guard) = shard.algo.lock() else {
                continue;
            };
            let bytes = encode(&guard);
            let packets = shard.packets_done.load(Ordering::Acquire);
            *shard
                .checkpoint
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(CheckpointSlot { bytes, packets });
        }
        res
    }

    /// When on, the ingest entry points ([`TopKAlgorithm::insert`] /
    /// [`TopKAlgorithm::insert_batch`]) scan for dead workers and run
    /// [`ShardedEngine::recover`] themselves, so the stream self-heals
    /// without the caller checking [`ShardedEngine::flush`]. Requires
    /// [`ShardedEngine::enable_checkpoints`]; recoveries land in
    /// [`ShardedEngine::recovery_log`].
    pub fn set_auto_recover(&mut self, on: bool) {
        self.auto_recover = on;
    }

    /// Installs a deterministic fault plan: each shard's worker takes
    /// its scheduled faults when its cumulative applied-packet count
    /// crosses their thresholds (see [`crate::fault`]). Replaces any
    /// previous plan. Specs naming a shard index beyond the current
    /// topology are kept dormant: a later [`ShardedEngine::reshard`]
    /// that grows past that index arms them on the new worker (and a
    /// reshard rebases packet counters to the packets a shard's
    /// restored state represents, so thresholds stay in cumulative
    /// sub-stream coordinates — a threshold the rebase jumps past
    /// fires on the new worker's first batch). Test/CLI hook — a
    /// production engine never calls this.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (idx, shard) in self.shards.iter().enumerate() {
            shard.faults.install(plan.specs_for(idx));
        }
        self.fault_plan = Some(plan.clone());
    }

    /// Checkpoints every live shard right now (behind the usual
    /// dispatch barrier) and waits for the encodes to land.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] when dead shards were skipped.
    pub fn checkpoint_now(&self) -> Result<(), ShardPoisoned> {
        {
            let mut pending = self.lock_pending();
            self.dispatch_locked(&mut pending);
            for idx in 0..self.shards.len() {
                self.enqueue_checkpoint(idx);
                self.shards[idx].ckpt_batches.store(0, Ordering::Relaxed);
            }
        }
        self.dispatch_and_flush()
    }

    /// The bytes of `shard`'s last taken checkpoint (in-flight
    /// checkpoint ops are flushed first), or `None` if none was taken
    /// yet. The differential tests compare these against a fresh encode
    /// of the restored shard to pin down bit-exact recovery.
    pub fn checkpoint_bytes(&self, shard: usize) -> Option<Vec<u8>> {
        let _ = self.dispatch_and_flush();
        self.shards[shard]
            .checkpoint
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|s| s.bytes.clone())
    }

    /// Every recovery this engine has performed, in order (both
    /// explicit [`ShardedEngine::recover`] calls and auto-recoveries).
    pub fn recovery_log(&self) -> &[RecoveryReport] {
        &self.recovery_log
    }

    /// Every reshard migration this engine has run, in order —
    /// committed and rolled back alike (see [`ShardedEngine::reshard`]).
    pub fn reshard_log(&self) -> &[ReshardReport] {
        &self.reshard_log
    }

    /// Respawns every poisoned shard from its last checkpoint: decodes
    /// the checkpoint bytes, spawns a fresh worker on fresh work/return
    /// rings (the dead thread still owns the old ones) around the
    /// restored algorithm, re-admits the shard's lane, and reports each
    /// recovery's dark window. After `Ok`,
    /// [`ShardedEngine::poisoned_shards`] is empty and routed packets
    /// flow to the respawned shards again. A healthy engine returns an
    /// empty `Vec`.
    ///
    /// # Errors
    ///
    /// [`RecoverError::CheckpointsDisabled`] without
    /// [`ShardedEngine::enable_checkpoints`];
    /// [`RecoverError::NoCheckpoint`] / [`RecoverError::CheckpointCorrupt`]
    /// when a dead shard has nothing restorable (shards recovered
    /// earlier in the call stay recovered).
    pub fn recover(&mut self) -> Result<Vec<RecoveryReport>, RecoverError> {
        let restore = self.restore.ok_or(RecoverError::CheckpointsDisabled)?;
        // Settle detection: drains pending (dropping dead shards'
        // packets into the routed/lost counters) and poisons every
        // shard whose worker is gone. The Err only repeats what
        // `poisoned_shards` tells us next.
        let _ = self.dispatch_and_flush();
        let mut reports = Vec::new();
        for idx in 0..self.shards.len() {
            if !self.shards[idx].is_poisoned() {
                continue;
            }
            let slot = self.shards[idx]
                .checkpoint
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
                .ok_or(RecoverError::NoCheckpoint { shard: idx })?;
            let algo =
                restore(&slot.bytes).ok_or(RecoverError::CheckpointCorrupt { shard: idx })?;
            let routed = self.shards[idx].packets_routed.load(Ordering::Acquire);
            let report = RecoveryReport {
                shard: idx,
                checkpoint_packets: slot.packets,
                routed_packets: routed,
                dark_packets: routed.saturating_sub(slot.packets),
            };
            self.respawn_shard(idx, algo, slot.packets);
            if let Some(hub) = &self.obs {
                hub.stages.recoveries.incr();
                hub.dark_packets.record(report.dark_packets);
                hub.journal.record(EventKind::Recovery {
                    shard: idx as u64,
                    dark_packets: report.dark_packets,
                });
            }
            self.recovery_log.push(report.clone());
            reports.push(report);
        }
        Ok(reports)
    }

    /// Replaces a dead shard's interior with a fresh worker around
    /// `algo`: fresh rings (the dead thread holds clones of the old
    /// ones), fresh flush counters, packet counters rebased to the
    /// restoring checkpoint's cut. The checkpoint slot and fault
    /// schedule carry over — the slot still matches the restored state,
    /// and remaining faults keep firing on the respawned worker.
    fn respawn_shard(&mut self, idx: usize, algo: A, base_packets: u64) {
        let old = &mut self.shards[idx];
        old.work.close();
        if let Some(worker) = old.worker.take() {
            let _ = worker.join(); // Already dead; reap the handle.
        }
        let checkpoint = Arc::clone(&old.checkpoint);
        let faults = Arc::clone(&old.faults);
        self.shards[idx] =
            Self::spawn_shard_with(algo, self.handoff, checkpoint, faults, base_packets);
        // The fresh worker's OnceLock is empty; re-wire it so the
        // respawned shard keeps accumulating on the same hub slot.
        if let Some(hub) = &self.obs {
            let _ = self.shards[idx].obs.set(hub.worker(idx));
        }
    }

    /// The auto-recover death scan: one `is_finished` load per shard
    /// (cheap enough for the ingest path), recovery only when a worker
    /// is actually gone. Errors are deliberately swallowed — ingest
    /// stays infallible, and an unrecoverable shard shows up through
    /// `flush`/`poisoned_shards` exactly as without auto-recovery.
    fn auto_recover_if_needed(&mut self) {
        if !self.auto_recover || self.restore.is_none() {
            return;
        }
        let any_dead = self
            .shards
            .iter()
            .any(|s| s.is_poisoned() || s.worker.as_ref().is_none_or(|w| w.is_finished()));
        if any_dead {
            let _ = self.recover();
        }
    }
}

impl<K, A> ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: PreparedInsert<K> + ShardReshard<K> + Send + 'static,
{
    /// Changes the shard count **under traffic**: a phase-structured
    /// online migration that ends with the engine serving the same
    /// stream over `new_shards` lanes.
    ///
    /// 1. **Drain** — dispatch everything pending and run a checkpoint
    ///    barrier op through every shard's SPSC ring
    ///    ([`ShardedEngine::checkpoint_now`]), so each shard's slot is
    ///    a packet-precise cut of its sub-stream. A `kill`/`wedge`/
    ///    `mid-walk` fault firing here respawns the victim from its
    ///    last periodic checkpoint (dark window accounted in the
    ///    report) and re-runs the barrier.
    /// 2. **Split/merge** — pure computation on the drained checkpoint
    ///    bytes; the old topology keeps serving reads meanwhile
    ///    (pre-swap state, never an error). Every new shard restores
    ///    the donors whose lane intervals intersect its own: shrink
    ///    folds donors through the Sum merge (disjoint sub-streams),
    ///    grow restores the same parent checkpoint into each child —
    ///    the parent *sketch* is replicated (a sketch cannot attribute
    ///    its cells to flows; the copy is conservative and keeps
    ///    estimates one-sided) while the monitored top-k set is
    ///    repartitioned under the new lane map
    ///    ([`ShardReshard::retain_flows`]).
    /// 3. **Swap** — the new topology is installed atomically under
    ///    the pending lock: routing is the same multiply-shift fold
    ///    over the new shard count (divergent-spec fallback routing
    ///    preserved — `route` does not change), per-shard packet
    ///    counters are rebased to the packets each restored state
    ///    represents (the sum of its donor cuts), and a baseline
    ///    checkpoint of the carried state is primed so a death right
    ///    after the swap is recoverable. Old workers are closed and
    ///    joined.
    ///
    /// Ingest issued between phases buffers in the pending partition
    /// under the usual bounded backpressure policy and is dispatched to
    /// the *new* topology after the swap. A migration that cannot
    /// complete — unrecoverable shard, undecodable or fold-incompatible
    /// checkpoint, faults exhausting the drain retry budget — **rolls
    /// back**: the old topology keeps serving exactly as before the
    /// call, and the returned [`ReshardReport`] carries the reason plus
    /// the dark-window accounting of any recoveries that did run.
    /// `reshard(current_count)` is a committed no-op.
    ///
    /// # Errors
    ///
    /// [`ReshardError::ZeroShards`] and
    /// [`ReshardError::CheckpointsDisabled`] are caller mistakes; every
    /// runtime failure is a rollback, reported not errored.
    pub fn reshard(&mut self, new_shards: usize) -> Result<ReshardReport, ReshardError> {
        if new_shards == 0 {
            return Err(ReshardError::ZeroShards);
        }
        let (Some(encode), Some(restore)) = (self.encode, self.restore) else {
            return Err(ReshardError::CheckpointsDisabled);
        };
        let from = self.shards.len();
        let mut recoveries: Vec<RecoveryReport> = Vec::new();
        if new_shards == from {
            let report = ReshardReport {
                from_shards: from,
                to_shards: new_shards,
                committed: true,
                cut_packets: Vec::new(),
                dark_packets: 0,
                recoveries,
                rollback: None,
            };
            self.reshard_log.push(report.clone());
            return Ok(report);
        }

        self.obs_reshard_phase(from, new_shards, ReshardStage::Drain);
        let cuts = match self.reshard_drain(&mut recoveries) {
            Ok(cuts) => cuts,
            Err(reason) => {
                return Ok(self.reshard_rollback(new_shards, Vec::new(), recoveries, reason))
            }
        };
        let cut_packets: Vec<u64> = cuts.iter().map(|c| c.packets).collect();

        self.obs_reshard_phase(from, new_shards, ReshardStage::Rebuild);
        let states = match self.reshard_rebuild(new_shards, &cuts, restore) {
            Ok(states) => states,
            Err(reason) => {
                return Ok(self.reshard_rollback(new_shards, cut_packets, recoveries, reason))
            }
        };

        self.obs_reshard_phase(from, new_shards, ReshardStage::Swap);
        self.reshard_swap(states, encode);
        self.obs_reshard_phase(from, new_shards, ReshardStage::Commit);
        if let Some(hub) = &self.obs {
            hub.stages.reshards.incr();
        }
        let report = ReshardReport {
            from_shards: from,
            to_shards: new_shards,
            committed: true,
            cut_packets,
            dark_packets: recoveries.iter().map(|r| r.dark_packets).sum(),
            recoveries,
            rollback: None,
        };
        self.reshard_log.push(report.clone());
        Ok(report)
    }

    /// Phase 1 of [`ShardedEngine::reshard`]: the checkpoint barrier.
    /// Retries around mid-drain faults — each retry first heals every
    /// dead shard through the normal recovery path (its dark window
    /// lands in `recoveries`), and fault specs are consume-once, so
    /// the loop strictly progresses; the attempt budget is a backstop
    /// against pathological plans, turning them into a rollback
    /// instead of a livelock.
    fn reshard_drain(
        &mut self,
        recoveries: &mut Vec<RecoveryReport>,
    ) -> Result<Vec<CheckpointSlot>, String> {
        let mut attempts = 0usize;
        while self.checkpoint_now().is_err() {
            attempts += 1;
            if attempts > self.shards.len() + 2 {
                return Err("drain retry budget exhausted (faults kept firing)".into());
            }
            match self.recover() {
                Ok(mut healed) => recoveries.append(&mut healed),
                Err(e) => return Err(format!("unrecoverable shard during drain: {e}")),
            }
        }
        let mut cuts = Vec::with_capacity(self.shards.len());
        for (idx, shard) in self.shards.iter().enumerate() {
            let slot = shard
                .checkpoint
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            match slot {
                Some(slot) => cuts.push(slot),
                None => return Err(format!("shard {idx} has no checkpoint after drain")),
            }
        }
        Ok(cuts)
    }

    /// Phase 2 of [`ShardedEngine::reshard`]: rebuilds each new
    /// shard's state from the drained cuts. Runs entirely on the
    /// caller thread against checkpoint *bytes* — no worker
    /// participates, so a fault cannot fire here and the old topology
    /// stays untouched (rollback is free until the swap).
    fn reshard_rebuild(
        &self,
        new_shards: usize,
        cuts: &[CheckpointSlot],
        restore: RestoreFn<A>,
    ) -> Result<Vec<(A, u64)>, String> {
        let route = self.route;
        let mut out = Vec::with_capacity(new_shards);
        for j in 0..new_shards {
            let (first, last) = donor_range(j, new_shards, cuts.len());
            let mut acc: Option<A> = None;
            let mut base = 0u64;
            for (i, cut) in cuts.iter().enumerate().take(last + 1).skip(first) {
                let Some(part) = restore(&cut.bytes) else {
                    return Err(format!("donor shard {i}'s checkpoint failed to decode"));
                };
                base = base.saturating_add(cut.packets);
                match &mut acc {
                    None => acc = Some(part),
                    Some(a) => {
                        if let Err(e) = a.fold_donor(&part) {
                            return Err(format!("donor shard {i} is not fold-compatible: {e}"));
                        }
                    }
                }
            }
            let Some(mut algo) = acc else {
                return Err(format!("new shard {j} has no donor interval"));
            };
            // Repartition the monitored set under the *new* lane map:
            // only flows routing to lane interval `j` stay reported
            // here. Same prepare + fold as the dispatcher, so a
            // retained flow is exactly a flow future packets reach.
            algo.retain_flows(&mut |key: &K| {
                let kb = key.key_bytes();
                lane_to_shard(route.prepare(kb.as_slice()).lane(), new_shards) == j
            });
            out.push((algo, base));
        }
        Ok(out)
    }

    /// Phase 3 of [`ShardedEngine::reshard`]: installs the new
    /// topology. New workers spawn *before* the pending lock is taken
    /// (spawning allocates; the lock only covers the pointer swap), the
    /// pending partition is resized to the new shard count under the
    /// lock — the atomic routing swap: every later `route_into` folds
    /// lanes over the new count — and the old workers are closed and
    /// joined after.
    fn reshard_swap(&mut self, states: Vec<(A, u64)>, encode: EncodeFn<A>) {
        let from = self.shards.len();
        let mut fresh = Vec::with_capacity(states.len());
        for (j, (algo, base)) in states.into_iter().enumerate() {
            // Baseline checkpoint = the carried state at its rebased
            // cut: a death right after the swap restores exactly what
            // the migration installed (dark window = post-swap routed
            // packets only).
            let slot = Arc::new(Mutex::new(Some(CheckpointSlot {
                bytes: encode(&algo),
                packets: base,
            })));
            // Shard indices alive on both sides keep their fault slice
            // (consumed faults stay consumed across the migration);
            // indices the grow created get their slice of the stored
            // plan armed fresh.
            let faults = if j < from {
                Arc::clone(&self.shards[j].faults)
            } else {
                let f = Arc::new(ShardFaults::default());
                if let Some(plan) = &self.fault_plan {
                    f.install(plan.specs_for(j));
                }
                f
            };
            fresh.push(Self::spawn_shard_with(
                algo,
                self.handoff,
                slot,
                faults,
                base,
            ));
        }
        self.buffers_allocated
            .fetch_add(fresh.len() as u64, Ordering::Release);
        let old = {
            // Field-level borrows (not `lock_pending`) so the guard on
            // `pending` and the mutable borrow of `shards` split.
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            pending.per_shard = (0..fresh.len()).map(|_| SubBatch::new()).collect();
            pending.total = 0;
            std::mem::replace(&mut self.shards, fresh)
        };
        // Wire the new topology's workers into the hub: slot counters
        // are per-index, so shards alive on both sides keep their
        // series and grown indices start fresh ones.
        if let Some(hub) = &self.obs {
            for (j, shard) in self.shards.iter().enumerate() {
                let _ = shard.obs.set(hub.worker(j));
            }
        }
        for mut shard in old {
            shard.work.close();
            shard.wake();
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }

    /// Builds, logs, and returns the rollback report: the old topology
    /// was not (or could not be) swapped out and keeps serving.
    fn reshard_rollback(
        &mut self,
        to_shards: usize,
        cut_packets: Vec<u64>,
        recoveries: Vec<RecoveryReport>,
        reason: String,
    ) -> ReshardReport {
        self.obs_reshard_phase(self.shards.len(), to_shards, ReshardStage::Rollback);
        let report = ReshardReport {
            from_shards: self.shards.len(),
            to_shards,
            committed: false,
            dark_packets: recoveries.iter().map(|r| r.dark_packets).sum(),
            cut_packets,
            recoveries,
            rollback: Some(reason),
        };
        self.reshard_log.push(report.clone());
        report
    }
}

impl<K, A> TopKAlgorithm<K> for ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: PreparedInsert<K> + Send + 'static,
{
    fn insert(&mut self, key: &K) {
        // Scalar fast path: the death scan piggybacks on the dispatch
        // boundary, not on every buffered insert.
        let dispatch = {
            let mut pending = self.lock_pending();
            self.route_into(std::slice::from_ref(key), &mut pending);
            pending.total >= self.batch_capacity
        };
        if dispatch {
            self.auto_recover_if_needed();
            let mut pending = self.lock_pending();
            if pending.total >= self.batch_capacity {
                self.dispatch_locked(&mut pending);
            }
        }
    }

    fn insert_batch(&mut self, keys: &[K]) {
        // Recover *before* routing, so a freshly respawned shard
        // receives this batch instead of dropping it.
        self.auto_recover_if_needed();
        let mut pending = self.lock_pending();
        self.route_into(keys, &mut pending);
        // A batch boundary is a dispatch boundary: hand every shard its
        // sub-batch now so workers overlap with the caller.
        self.dispatch_locked(&mut pending);
    }

    fn query(&self, key: &K) -> u64 {
        let _ = self.dispatch_and_flush();
        let s = self.shard_of(key);
        if self.shards[s].is_poisoned() {
            // The flow's shard died mid-ingest; its state may be torn,
            // so report "unknown" rather than a garbage estimate.
            return 0;
        }
        match self.shards[s].algo.lock() {
            Ok(guard) => guard.query(key),
            // Poisoned mutex = worker died holding it; same degraded
            // answer as a poisoned shard.
            Err(_) => 0,
        }
    }

    fn top_k(&self) -> Vec<(K, u64)> {
        let _ = self.dispatch_and_flush();
        let mut all: Vec<(K, u64)> = Vec::new();
        for shard in &self.shards {
            if shard.is_poisoned() {
                continue; // Dead shard: its flows are unreported.
            }
            let Ok(guard) = shard.algo.lock() else {
                continue; // Torn mid-walk: degrade like a poisoned shard.
            };
            all.extend(guard.top_k());
        }
        // Flows are partitioned, so the union has no duplicates; the
        // global top-k is the k largest. Ties break on key bytes so the
        // report is deterministic.
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.key_bytes().as_slice().cmp(b.0.key_bytes().as_slice()))
        });
        all.truncate(self.k);
        all
    }

    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| {
                // A dead worker may have poisoned the mutex; its memory
                // is still allocated, so account it when readable and
                // fall back to the inner value otherwise.
                s.algo
                    .lock()
                    .map(|g| g.memory_bytes())
                    .or_else(|p| Ok::<usize, ()>(p.into_inner().memory_bytes()))
                    .ok()
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }
}

impl<K, A> ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: PreparedInsert<K> + EpochRotate + Send + 'static,
{
    /// Crosses one period boundary on **every** shard, phase-aligned:
    /// all pending packets are dispatched first, then a rotation
    /// control message is enqueued behind them on each shard's ring.
    /// Because workers process their ring in order and every shard
    /// receives the same cut — everything inserted before this call
    /// lands pre-rotation, everything after lands post-rotation — the
    /// shard windows advance in lockstep without stopping the world:
    /// rotation overlaps with the caller like any other batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] when dead shards were skipped (their
    /// windows no longer advance).
    pub fn rotate_all(&self) -> Result<(), ShardPoisoned> {
        {
            // The ops go out under the pending lock too: it is the
            // producer side of every shard ring, so all pushes stay
            // serialized (SPSC) and no packet can slip between the
            // dispatch and the rotation cut.
            let mut pending = self.lock_pending();
            self.dispatch_locked(&mut pending);
            for idx in 0..self.shards.len() {
                self.send_to_shard(
                    idx,
                    ShardMsg::Op(Box::new(|a: &mut A| a.rotate_epoch())),
                    1,
                    0,
                );
                // A rotation is a natural checkpoint barrier: the
                // encode rides right behind the rotate op, so a restart
                // from it resumes at a clean epoch boundary.
                if self.checkpoint_every.is_some() {
                    self.enqueue_checkpoint(idx);
                    self.shards[idx].ckpt_batches.store(0, Ordering::Relaxed);
                }
            }
        }
        if let Some(hub) = &self.obs {
            hub.stages.rotations.incr();
        }
        let dead = self.poisoned_shards();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(ShardPoisoned { shards: dead })
        }
    }
}

impl<K: FlowKey + Send + 'static> ShardedEngine<K, crate::sliding::SlidingTopK<K>> {
    /// An engine of `shards` sliding windows (see
    /// [`ShardedEngine::parallel`] for the memory split): every shard
    /// runs a `window`-epoch [`SlidingTopK`](crate::sliding::SlidingTopK)
    /// ring, sharing `cfg`'s seed so the engine rides hash-once handoff
    /// and the shard windows stay merge-compatible.
    pub fn sliding(cfg: &HkConfig, shards: usize, window: usize) -> Self {
        let per = split_config(cfg, shards);
        Self::from_fn(shards, cfg.k, |_| {
            crate::sliding::SlidingTopK::new(per.clone(), window)
        })
    }

    /// Exports one **full** wire-v2 frame per shard, phase-aligned:
    /// everything inserted before this call is dispatched and flushed
    /// first — the same pending-dispatch barrier
    /// [`ShardedEngine::rotate_all`] cuts behind — so every frame is
    /// captured at the same point of the stream and the same rotation
    /// count. Shard `i`'s frame carries switch id `switch_id_base + i`:
    /// flows are hash-partitioned across shards, so a collector
    /// aggregates the frames as *disjoint* vantage points
    /// ([`crate::collector::AggregationRule::Sum`]).
    ///
    /// # Errors
    ///
    /// Returns [`ShardPoisoned`] when any shard's worker has died (its
    /// ring state may be torn; no frame is exported for it — the
    /// surviving shards' frames are not returned either, so a partial
    /// fleet view is never mistaken for a complete one).
    pub fn export_frames(
        &self,
        switch_id_base: u64,
        epoch_packets: u32,
    ) -> Result<Vec<Vec<u8>>, ShardPoisoned> {
        self.flush()?;
        let frames: Vec<Vec<u8>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                // The flush barrier already rejected dead workers;
                // residual poison can only come from a reader's panic
                // (shared access, state intact) — absorb it.
                let guard = shard.algo.lock().unwrap_or_else(PoisonError::into_inner);
                guard.export_frame(switch_id_base + i as u64, epoch_packets)
            })
            .collect();
        self.obs_record_export(&frames);
        Ok(frames)
    }

    /// The delta sibling of [`ShardedEngine::export_frames`]: one
    /// **delta** frame per shard behind the same flush barrier, each
    /// carrying the shard window's newest closed epoch. Returns `None`
    /// before the first rotation (no epoch has closed anywhere — the
    /// shards rotate in lockstep through
    /// [`ShardedEngine::rotate_all`], so either all have a closed
    /// epoch or none do).
    pub fn export_deltas(
        &self,
        switch_id_base: u64,
        epoch_packets: u32,
    ) -> Result<Option<Vec<Vec<u8>>>, ShardPoisoned> {
        self.flush()?;
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = shard.algo.lock().unwrap_or_else(PoisonError::into_inner);
            match guard.export_delta(switch_id_base + i as u64, epoch_packets) {
                Some(frame) => out.push(frame),
                None => return Ok(None),
            }
        }
        self.obs_record_export(&out);
        Ok(Some(out))
    }

    /// The dirty sibling of [`ShardedEngine::export_deltas`]: one
    /// **dirty** wire-v3 frame per shard behind the same flush barrier
    /// ([`SlidingTopK::export_dirty`](crate::sliding::SlidingTopK::export_dirty)).
    /// Returns `None` unless *every* shard produced a dirty frame —
    /// the shards rotate in lockstep through
    /// [`ShardedEngine::rotate_all`] and this method primes or advances
    /// every shard's shadow on every call, so after the first
    /// (`None`-returning, shadow-priming) call per rotation stream the
    /// shards stay dirty-eligible together. On `None` the caller ships
    /// [`ShardedEngine::export_deltas`] or
    /// [`ShardedEngine::export_frames`] instead; either fallback
    /// carries the same closed epochs the refreshed shadows snapshot,
    /// so the next rotation can go dirty.
    pub fn export_dirties(
        &self,
        switch_id_base: u64,
        epoch_packets: u32,
    ) -> Result<Option<Vec<Vec<u8>>>, ShardPoisoned> {
        self.flush()?;
        let mut out = Vec::with_capacity(self.shards.len());
        let mut complete = true;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.algo.lock().unwrap_or_else(PoisonError::into_inner);
            // Call every shard even once one came up empty: the call is
            // what primes/advances each shard's shadow for next time.
            match guard.export_dirty(switch_id_base + i as u64, epoch_packets) {
                Some(frame) => out.push(frame),
                None => complete = false,
            }
        }
        if complete {
            self.obs_record_export(&out);
        }
        Ok(complete.then_some(out))
    }

    /// Counts one export op and records per-shard frame sizes into the
    /// export-bytes histogram (no-op without a hub).
    fn obs_record_export(&self, frames: &[Vec<u8>]) {
        if let Some(hub) = &self.obs {
            hub.stages.exports.incr();
            for f in frames {
                hub.export_bytes.record(f.len() as u64);
            }
        }
    }
}

impl<K, A> EpochRotate for ShardedEngine<K, A>
where
    K: FlowKey + Send + 'static,
    A: PreparedInsert<K> + EpochRotate + Send + 'static,
{
    /// [`ShardedEngine::rotate_all`] through the infallible trait
    /// surface. A [`ShardPoisoned`] error is not lost, only deferred:
    /// the poisoned state is sticky, so the next
    /// [`ShardedEngine::flush`] (or [`ShardedEngine::poisoned_shards`])
    /// reports it — callers driving the engine generically should check
    /// one of those after the stream, as the CLI's windowed path does.
    fn rotate_epoch(&mut self) {
        let _ = self.rotate_all();
    }
}

impl<K: FlowKey, A: TopKAlgorithm<K>> Drop for ShardedEngine<K, A> {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            // Close the ring; the worker drains the backlog and exits.
            shard.work.close();
            shard.wake();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// Divides a configuration's width by the shard count so an `n`-shard
/// engine is accounted the same total sketch memory as one `cfg`
/// instance.
fn split_config(cfg: &HkConfig, shards: usize) -> HkConfig {
    let mut per = cfg.clone();
    per.width = (cfg.width / shards.max(1)).max(1);
    per
}

impl<K: FlowKey + Send + 'static> ShardedEngine<K, ParallelTopK<K>> {
    /// An engine of `shards` Parallel-variant instances. Each shard gets
    /// `cfg` with its width divided by the shard count, so total sketch
    /// memory matches a single `cfg` instance; all shards share `cfg`'s
    /// seed, which keeps them merge-compatible — and puts the engine in
    /// hash-once handoff mode (shared hash spec).
    pub fn parallel(cfg: &HkConfig, shards: usize) -> Self {
        let per = split_config(cfg, shards);
        Self::from_fn(shards, cfg.k, |_| ParallelTopK::new(per.clone()))
    }

    /// Folds every **live** shard into one Parallel instance via the
    /// classic sketch merge machinery ([`MergeMode::Sum`]: shards saw
    /// disjoint packets), for network-wide-style queries over one
    /// structure. Poisoned shards are skipped — the merged view
    /// degrades exactly like [`TopKAlgorithm::top_k`] does.
    ///
    /// # Errors
    ///
    /// [`MergeError::NoLiveShards`] when every shard is poisoned;
    /// otherwise the usual merge-compatibility errors.
    ///
    /// [`MergeMode::Sum`]: crate::merge::MergeMode::Sum
    pub fn merged(&self) -> Result<ParallelTopK<K>, MergeError> {
        let mut out: Option<ParallelTopK<K>> = None;
        for i in 0..self.shards() {
            let Some(part) = self.with_shard(i, |a| a.clone()) else {
                continue;
            };
            match &mut out {
                None => out = Some(part),
                Some(acc) => acc.merge_from(&part)?,
            }
        }
        out.ok_or(MergeError::NoLiveShards)
    }
}

impl<K: FlowKey + Send + 'static> ShardedEngine<K, MinimumTopK<K>> {
    /// An engine of `shards` Minimum-variant instances (see
    /// [`ShardedEngine::parallel`] for the memory split).
    pub fn minimum(cfg: &HkConfig, shards: usize) -> Self {
        let per = split_config(cfg, shards);
        Self::from_fn(shards, cfg.k, |_| MinimumTopK::new(per.clone()))
    }

    /// Folds every **live** shard into one Minimum instance via the
    /// sketch merge machinery (same degradation rules as the Parallel
    /// engine's `merged`: poisoned shards are skipped,
    /// [`MergeError::NoLiveShards`] when none survive).
    pub fn merged(&self) -> Result<MinimumTopK<K>, MergeError> {
        let mut out: Option<MinimumTopK<K>> = None;
        for i in 0..self.shards() {
            let Some(part) = self.with_shard(i, |a| a.clone()) else {
                continue;
            };
            match &mut out {
                None => out = Some(part),
                Some(acc) => acc.merge_from(&part)?,
            }
        }
        out.ok_or(MergeError::NoLiveShards)
    }
}

/// The old Parallel-only sharded type, now a thin alias of the generic
/// engine (construct with [`ShardedEngine::parallel`] or
/// [`ShardedEngine::from_shards`]).
pub type ShardedParallelTopK<K> = ShardedEngine<K, ParallelTopK<K>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicTopK;

    fn skewed_stream(n: usize, heavy: u64, tail: u64, seed: u64) -> Vec<u64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(2) {
                    (state >> 1) % heavy
                } else {
                    heavy + state % tail
                }
            })
            .collect()
    }

    fn cfg(w: usize, k: usize) -> HkConfig {
        HkConfig::builder().arrays(2).width(w).k(k).seed(5).build()
    }

    #[test]
    fn finds_elephants_like_sequential() {
        let stream = skewed_stream(60_000, 10, 3000, 9);
        let mut sharded = ShardedEngine::parallel(&cfg(256, 10), 4);
        let mut seq = ParallelTopK::<u64>::new(cfg(256, 10));
        sharded.insert_batch(&stream);
        seq.insert_batch(&stream);

        for (name, top) in [("sharded", sharded.top_k()), ("sequential", seq.top_k())] {
            let hits = top.iter().filter(|&&(f, _)| f < 10).count();
            assert!(hits >= 9, "{name} found only {hits}/10: {top:?}");
        }
    }

    #[test]
    fn partitioning_preserves_exact_counts() {
        // Each flow lands on exactly one shard, so an uncontended flow's
        // count is exact — sharding must not split or double-count it.
        let mut engine = ShardedEngine::parallel(&cfg(2048, 16), 4);
        assert!(engine.prepared_handoff(), "shared seed => handoff mode");
        let mut batch = Vec::new();
        for f in 0..16u64 {
            for _ in 0..100 * (f + 1) {
                batch.push(f);
            }
        }
        engine.insert_batch(&batch);
        for f in 0..16u64 {
            assert_eq!(engine.query(&f), 100 * (f + 1), "flow {f}");
        }
    }

    #[test]
    fn scalar_inserts_flush_on_read() {
        let mut engine = ShardedEngine::parallel(&cfg(128, 4), 2);
        for _ in 0..10 {
            engine.insert(&7u64);
        }
        // Far below batch_capacity, yet reads must see every packet.
        assert_eq!(engine.query(&7), 10);
        assert_eq!(engine.top_k()[0], (7, 10));
    }

    #[test]
    fn deterministic_across_runs() {
        let stream = skewed_stream(30_000, 8, 500, 3);
        let run = || {
            let mut e = ShardedEngine::parallel(&cfg(128, 8), 3);
            for chunk in stream.chunks(777) {
                e.insert_batch(chunk);
            }
            e.top_k()
        };
        assert_eq!(run(), run(), "thread scheduling must not leak into results");
    }

    #[test]
    fn works_for_any_algorithm_basic() {
        let mut engine = ShardedEngine::from_fn(3, 5, |_| BasicTopK::<u64>::new(cfg(256, 5)));
        let stream = skewed_stream(30_000, 5, 1000, 7);
        engine.insert_batch(&stream);
        let top = engine.top_k();
        let hits = top.iter().filter(|&&(f, _)| f < 5).count();
        assert!(hits >= 4, "top = {top:?}");
        assert_eq!(engine.name(), "Sharded");
        assert!(engine.memory_bytes() >= 3 * BasicTopK::<u64>::new(cfg(256, 5)).memory_bytes());
    }

    #[test]
    fn merged_view_uses_sketch_merge() {
        let mut engine = ShardedEngine::parallel(&cfg(1024, 8), 4);
        let mut batch = Vec::new();
        for f in 0..8u64 {
            for _ in 0..200 {
                batch.push(f);
            }
        }
        engine.insert_batch(&batch);
        let merged = engine.merged().expect("shards share config");
        for f in 0..8u64 {
            use hk_common::algorithm::TopKAlgorithm;
            assert_eq!(merged.query(&f), 200, "flow {f} after merge");
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut engine = ShardedEngine::<u64, _>::parallel(&cfg(16, 4), 2);
        engine.insert_batch(&[]);
        assert!(engine.top_k().is_empty());
    }

    #[test]
    fn alias_still_names_the_parallel_engine() {
        let engine: ShardedParallelTopK<u64> = ShardedEngine::parallel(&cfg(64, 4), 2);
        assert_eq!(engine.shards(), 2);
    }

    #[test]
    fn steady_state_dispatch_recycles_buffers() {
        // The recycled-buffer round trip: after warm-up, sub-batch
        // buffers cycle dispatcher → work ring → worker → return ring →
        // dispatcher, and the allocation counter stops moving no matter
        // how many more flushes run.
        let mut engine = ShardedEngine::parallel(&cfg(256, 8), 4);
        let stream = skewed_stream(8192, 16, 500, 11);
        // Warm-up: let buffer capacities and the recycle cycle converge
        // (flush after each batch so every buffer completes the trip).
        for _ in 0..16 {
            engine.insert_batch(&stream);
            engine.flush().expect("healthy engine");
        }
        let after_warmup = engine.dispatch_buffers_allocated();
        for _ in 0..64 {
            engine.insert_batch(&stream);
            engine.flush().expect("healthy engine");
        }
        assert_eq!(
            engine.dispatch_buffers_allocated(),
            after_warmup,
            "steady-state dispatch must reuse returned buffers, not allocate"
        );
        // Sanity: the counter is small — on the order of shards × ring
        // depth, not on the order of flush count.
        assert!(after_warmup <= (4 * (WORK_RING_CAPACITY as u64 + 2)) + 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::<u64, ParallelTopK<u64>>::from_shards(vec![], 4);
    }

    /// An algorithm that blows up on ingest, to exercise worker-death
    /// detection.
    struct Exploder;

    impl TopKAlgorithm<u64> for Exploder {
        fn insert(&mut self, _key: &u64) {
            panic!("boom");
        }
        fn query(&self, _key: &u64) -> u64 {
            0
        }
        fn top_k(&self) -> Vec<(u64, u64)> {
            Vec::new()
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "Exploder"
        }
    }

    impl PreparedInsert<u64> for Exploder {
        fn hash_spec(&self) -> HashSpec {
            HashSpec::new(0, 32)
        }
        fn insert_prepared(&mut self, key: &u64, _p: &PreparedKey) {
            self.insert(key);
        }
    }

    #[test]
    fn dead_worker_poisons_shard_instead_of_panicking() {
        let mut engine = ShardedEngine::from_shards(vec![Exploder], 1);
        engine.insert_batch(&[1u64]);
        // The worker panicked on the batch; the flush must surface that
        // as an inspectable error rather than spin forever or panic the
        // caller thread.
        let err = engine.flush().expect_err("dead worker must be reported");
        assert_eq!(err.shards, vec![0]);
        assert_eq!(engine.poisoned_shards(), vec![0]);
        assert!(err.to_string().contains("died"), "err = {err}");
        // Reads degrade to the surviving shards (none here) instead of
        // hanging or panicking.
        assert_eq!(engine.query(&1), 0);
        assert!(engine.top_k().is_empty());
        // Further ingest routed to the dead shard is dropped + counted,
        // without allocating a fresh buffer per dispatch: a long-lived
        // engine with a dead shard must stay zero-alloc too.
        let allocated = engine.dispatch_buffers_allocated();
        for _ in 0..32 {
            engine.insert_batch(&[2u64, 3u64]);
        }
        assert!(engine.flush().is_err());
        assert!(
            engine.lost_packets() >= 2,
            "lost = {}",
            engine.lost_packets()
        );
        assert_eq!(
            engine.dispatch_buffers_allocated(),
            allocated,
            "dispatch to a poisoned shard must not allocate"
        );
    }

    #[test]
    fn full_ring_on_dead_worker_drops_instead_of_hanging() {
        // Overrun a dead worker's bounded ring: the backpressure path
        // must detect the death and drop (counted), never spin forever.
        let mut engine = ShardedEngine::from_shards(vec![Exploder], 1);
        let stream: Vec<u64> = (0..64).collect();
        for _ in 0..4 * WORK_RING_CAPACITY {
            engine.insert_batch(&stream);
        }
        assert!(engine.flush().is_err());
        assert!(
            engine.lost_packets() > 0,
            "overrun packets must be counted lost"
        );
    }

    #[test]
    fn healthy_engine_reports_no_poisoned_shards() {
        let mut engine = ShardedEngine::parallel(&cfg(64, 4), 2);
        engine.insert_batch(&[1u64, 2, 3]);
        engine.flush().expect("healthy shards flush cleanly");
        assert!(engine.poisoned_shards().is_empty());
        assert_eq!(engine.lost_packets(), 0);
    }

    #[test]
    fn surviving_shards_keep_serving_after_one_death() {
        // Shard 0 explodes on its first packet; shard 1 is a real HK
        // instance. Flows routed to shard 1 must stay queryable.
        enum Mixed {
            Bad(Exploder),
            Good(Box<ParallelTopK<u64>>),
        }
        impl TopKAlgorithm<u64> for Mixed {
            fn insert(&mut self, key: &u64) {
                match self {
                    Mixed::Bad(a) => a.insert(key),
                    Mixed::Good(a) => a.insert(key),
                }
            }
            fn query(&self, key: &u64) -> u64 {
                match self {
                    Mixed::Bad(a) => a.query(key),
                    Mixed::Good(a) => a.query(key),
                }
            }
            fn top_k(&self) -> Vec<(u64, u64)> {
                match self {
                    Mixed::Bad(a) => a.top_k(),
                    Mixed::Good(a) => a.top_k(),
                }
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "Mixed"
            }
        }
        impl PreparedInsert<u64> for Mixed {
            fn hash_spec(&self) -> HashSpec {
                HashSpec::new(0, 32)
            }
            fn insert_prepared(&mut self, key: &u64, _p: &PreparedKey) {
                self.insert(key);
            }
        }
        let mut engine = ShardedEngine::from_shards(
            vec![
                Mixed::Bad(Exploder),
                Mixed::Good(Box::new(ParallelTopK::new(cfg(256, 4)))),
            ],
            4,
        );
        // Two packets of each of 20 flows; routing spreads them over
        // both shards.
        let mut batch = Vec::new();
        for f in 0..20u64 {
            batch.push(f);
            batch.push(f);
        }
        assert!(
            batch.iter().any(|f| engine.shard_of(f) == 0)
                && batch.iter().any(|f| engine.shard_of(f) == 1),
            "stream must hit both shards"
        );
        engine.insert_batch(&batch);
        let err = engine.flush().expect_err("exploding shard must poison");
        assert_eq!(err.shards, vec![0]);
        // Flows on the surviving shard answer exactly.
        let mut served = 0;
        for f in &batch {
            if engine.shard_of(f) == 1 {
                assert_eq!(engine.query(f), 2, "flow {f} on surviving shard");
                served += 1;
            }
        }
        assert!(served > 0, "stream never hit the surviving shard");
        assert!(engine.top_k().iter().all(|(f, _)| engine.shard_of(f) == 1));
    }

    #[test]
    fn divergent_shard_specs_fall_back_to_route_only() {
        // Deliberately different per-shard seeds: no single prepared
        // key fits every shard, so the engine must route under its own
        // seed and let workers hash — and still count exactly.
        let mut engine = ShardedEngine::from_fn(3, 8, |i| {
            ParallelTopK::<u64>::new(
                HkConfig::builder()
                    .arrays(2)
                    .width(1024)
                    .k(8)
                    .seed(100 + i as u64)
                    .build(),
            )
        });
        assert!(!engine.prepared_handoff(), "per-shard seeds => route-only");
        let mut batch = Vec::new();
        for f in 0..8u64 {
            for _ in 0..100 {
                batch.push(f);
            }
        }
        engine.insert_batch(&batch);
        for f in 0..8u64 {
            assert_eq!(engine.query(&f), 100, "flow {f}");
        }
    }

    #[test]
    fn sharded_export_is_phase_aligned_and_collectible() {
        use crate::collector::{AggregationRule, Collector};
        use crate::wire::{FrameKind, WindowFrame};

        let mut engine = ShardedEngine::<u64, _>::sliding(&cfg(1024, 8), 3, 2);
        assert!(engine.prepared_handoff());

        // No rotation yet: no closed epoch anywhere, so no deltas.
        engine.insert_batch(&(0..3000u64).map(|i| i % 6).collect::<Vec<_>>());
        assert!(engine.export_deltas(0, 500).unwrap().is_none());

        engine.rotate_all().unwrap();
        engine.insert_batch(&(0..3000u64).map(|i| 100 + i % 6).collect::<Vec<_>>());

        // Full frames: one per shard, all at the same rotation count
        // (the flush barrier), decodable, with the right switch ids.
        let frames = engine.export_frames(10, 500).unwrap();
        assert_eq!(frames.len(), 3);
        for (i, bytes) in frames.iter().enumerate() {
            let f = WindowFrame::<u64>::decode(bytes).unwrap();
            assert_eq!(f.kind, FrameKind::Full);
            assert_eq!(f.switch_id, 10 + i as u64);
            assert_eq!(f.rotation, 1, "phase-aligned rotation count");
            assert_eq!(f.window, 2);
            assert_eq!(f.epoch_packets, 500);
        }

        // Deltas exist now and carry the closed epoch of rotation 1.
        let deltas = engine.export_deltas(10, 500).unwrap().unwrap();
        assert_eq!(deltas.len(), 3);
        for bytes in &deltas {
            let f = WindowFrame::<u64>::decode(bytes).unwrap();
            assert_eq!(f.kind, FrameKind::Delta);
            assert_eq!(f.rotation, 1);
        }

        // A Sum-rule collector (shards are disjoint vantage points)
        // reassembles the full frames into the engine's own view.
        let mut coll = Collector::<u64>::new(16, AggregationRule::Sum);
        for bytes in &frames {
            coll.submit_window_frame(bytes).unwrap();
        }
        for f in (0..6u64).chain(100..106) {
            assert_eq!(
                coll.window_top_k()
                    .iter()
                    .find(|(k, _)| *k == f)
                    .map(|&(_, c)| c)
                    .unwrap_or(0),
                engine.query(&f),
                "flow {f}: collector view must match the engine"
            );
        }
    }

    #[test]
    fn sharded_dirty_export_primes_then_ships_lockstep() {
        use crate::wire::{FrameKind, WindowFrame};

        let mut engine = ShardedEngine::<u64, _>::sliding(&cfg(1024, 8), 3, 2);

        // No rotation yet: no closed epoch anywhere.
        engine.insert_batch(&(0..3000u64).map(|i| i % 6).collect::<Vec<_>>());
        assert!(engine.export_dirties(10, 500).unwrap().is_none());

        // One closed epoch: every shard primes its shadow, and the
        // batch declines as a unit (all-or-nothing lockstep).
        engine.rotate_all().unwrap();
        assert!(engine.export_dirties(10, 500).unwrap().is_none());

        engine.insert_batch(&(0..3000u64).map(|i| 100 + i % 6).collect::<Vec<_>>());
        engine.rotate_all().unwrap();
        let frames = engine
            .export_dirties(10, 500)
            .unwrap()
            .expect("every shard shadow is fresh");
        assert_eq!(frames.len(), 3);
        for (i, bytes) in frames.iter().enumerate() {
            let f = WindowFrame::<u64>::decode(bytes).unwrap();
            assert_eq!(f.kind, FrameKind::Dirty);
            assert_eq!(f.switch_id, 10 + i as u64);
            assert_eq!(f.rotation, 2, "phase-aligned rotation count");
            assert_eq!(f.window, 2);
            assert!(f.patch.is_some());
        }
    }

    #[test]
    fn rotate_all_keeps_shard_windows_phase_aligned() {
        use crate::sliding::SlidingTopK;
        // A 2-epoch window over 3 shards: flows inserted before the
        // second rotate_all must be gone after the third, exactly as in
        // the single-instance window.
        let mk = || ShardedEngine::from_fn(3, 8, |_| SlidingTopK::<u64>::new(cfg(256, 8), 2));
        let mut engine = mk();
        assert!(engine.prepared_handoff(), "windows share the epoch seed");
        let old: Vec<u64> = (0..6000u64).map(|i| i % 6).collect();
        let new: Vec<u64> = (0..6000u64).map(|i| 100 + i % 6).collect();
        engine.insert_batch(&old);
        engine.rotate_all().expect("healthy rotation");
        engine.insert_batch(&new);
        // Old flows still inside the 2-epoch window.
        for f in 0..6u64 {
            assert_eq!(engine.query(&f), 1000, "flow {f} still in window");
        }
        engine.rotate_all().expect("healthy rotation");
        engine.rotate_all().expect("healthy rotation");
        for f in 0..6u64 {
            assert_eq!(engine.query(&f), 0, "flow {f} must have slid out");
        }
        // Rotation and per-shard sub-streams are deterministic.
        let run = |mut e: ShardedEngine<u64, SlidingTopK<u64>>| {
            e.insert_batch(&old);
            e.rotate_all().unwrap();
            e.insert_batch(&new);
            e.top_k()
        };
        assert_eq!(run(mk()), run(mk()));
    }

    /// An algorithm whose ingest blocks until a shared gate opens:
    /// makes the worker deterministically slow so the work ring fills
    /// and the full-ring backpressure policies are observable.
    struct Gated {
        open: Arc<std::sync::atomic::AtomicBool>,
        count: u64,
    }

    impl TopKAlgorithm<u64> for Gated {
        fn insert(&mut self, _key: &u64) {
            while !self.open.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            self.count += 1;
        }
        fn query(&self, _key: &u64) -> u64 {
            self.count
        }
        fn top_k(&self) -> Vec<(u64, u64)> {
            vec![(7, self.count)]
        }
        fn memory_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "Gated"
        }
    }

    impl PreparedInsert<u64> for Gated {
        fn hash_spec(&self) -> HashSpec {
            HashSpec::new(0, 32)
        }
        fn insert_prepared(&mut self, key: &u64, _p: &PreparedKey) {
            self.insert(key);
        }
    }

    #[test]
    fn shed_policy_drops_counted_packets_on_full_ring() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut engine = ShardedEngine::from_shards(
            vec![Gated {
                open: Arc::clone(&gate),
                count: 0,
            }],
            4,
        );
        engine.set_batch_capacity(1);
        assert_eq!(engine.backpressure(), BackpressurePolicy::Block);
        engine.set_backpressure(BackpressurePolicy::Shed);
        // The gated worker never frees a ring slot, so once the ring
        // fills every further batch must shed instead of stalling —
        // this loop terminates *because* Shed never blocks.
        let total = 20 * WORK_RING_CAPACITY as u64;
        for _ in 0..total {
            engine.insert_batch(&[7u64]);
        }
        assert!(engine.shed_packets() > 0, "full ring under Shed must shed");
        gate.store(true, Ordering::Release);
        engine.flush().expect("gated worker is alive, not dead");
        // Shed is bookkept loss, not silent loss: what was not shed was
        // applied, and none of it counts as dead-shard loss.
        assert_eq!(engine.query(&7), total - engine.shed_packets());
        assert_eq!(engine.lost_packets(), 0);
        assert!(engine.poisoned_shards().is_empty());
    }

    #[test]
    fn block_policy_stalls_until_worker_catches_up() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut engine = ShardedEngine::from_shards(
            vec![Gated {
                open: Arc::clone(&gate),
                count: 0,
            }],
            4,
        );
        engine.set_batch_capacity(1);
        // Open the gate from the side once the dispatcher is (almost
        // surely) parked on the full ring; under Block it must wait for
        // the worker rather than drop or shed anything.
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                gate.store(true, Ordering::Release);
            })
        };
        let total = 20 * WORK_RING_CAPACITY as u64;
        for _ in 0..total {
            engine.insert_batch(&[7u64]);
        }
        engine.flush().expect("healthy worker");
        opener.join().expect("opener thread");
        assert_eq!(engine.query(&7), total, "Block delivers every packet");
        assert_eq!(engine.shed_packets(), 0);
        assert_eq!(engine.lost_packets(), 0);
    }

    fn checked_engine(width: usize, shards: usize) -> ShardedEngine<u64, ParallelTopK<u64>> {
        let mut engine = ShardedEngine::parallel(&cfg(width, 16), shards);
        engine
            .enable_checkpoints(1)
            .expect("fresh engine checkpoints");
        engine
    }

    /// 100·(f+1) packets of each of 16 flows — wide-sketch counts are
    /// exact, so reshard carry errors show up as off-by-anything.
    fn counting_batch() -> Vec<u64> {
        let mut batch = Vec::new();
        for f in 0..16u64 {
            for _ in 0..100 * (f + 1) {
                batch.push(f);
            }
        }
        batch
    }

    #[test]
    fn reshard_grow_preserves_exact_counts_under_live_traffic() {
        let mut engine = checked_engine(2048, 2);
        let batch = counting_batch();
        engine.insert_batch(&batch);
        let report = engine.reshard(4).expect("well-formed reshard");
        assert!(report.committed, "zero-fault grow commits: {report}");
        assert_eq!((report.from_shards, report.to_shards), (2, 4));
        assert_eq!(report.dark_packets, 0, "no fault => no dark window");
        assert_eq!(engine.shards(), 4);
        // Traffic keeps flowing into the new topology.
        engine.insert_batch(&batch);
        for f in 0..16u64 {
            assert_eq!(engine.query(&f), 2 * 100 * (f + 1), "flow {f}");
        }
        // The carry must never lose counts (no underestimation from the
        // split): every monitored flow is still reported, exactly once.
        let top = engine.top_k();
        for f in 0..16u64 {
            let hits: Vec<_> = top.iter().filter(|&&(k, _)| k == f).collect();
            assert_eq!(hits.len(), 1, "flow {f} reported exactly once");
            assert_eq!(hits[0].1, 2 * 100 * (f + 1));
        }
        assert_eq!(engine.reshard_log().len(), 1);
    }

    #[test]
    fn reshard_shrink_folds_donors_without_losing_counts() {
        let mut engine = checked_engine(2048, 4);
        let batch = counting_batch();
        engine.insert_batch(&batch);
        let report = engine.reshard(2).expect("well-formed reshard");
        assert!(report.committed, "zero-fault shrink commits: {report}");
        assert_eq!(report.cut_packets.iter().sum::<u64>(), batch.len() as u64);
        assert_eq!(engine.shards(), 2);
        engine.insert_batch(&batch);
        for f in 0..16u64 {
            assert_eq!(engine.query(&f), 2 * 100 * (f + 1), "flow {f}");
        }
    }

    #[test]
    fn reshard_carry_is_one_sided_even_when_the_sketch_is_tight() {
        // A deliberately narrow sketch under a heavy-tailed stream:
        // estimates collide, but the grow carry must be invisible —
        // each child replicates its parent's sketch and keeps its slice
        // of the parent's store, so every sketch estimate and every
        // monitored count is bit-identical across the migration.
        // Whatever one-sidedness held before (Theorem 2) still holds.
        let stream = skewed_stream(40_000, 10, 2000, 13);
        let mut engine = checked_engine(64, 2);
        engine.insert_batch(&stream);
        let before = engine.top_k();
        let before_est: Vec<(u64, u64)> =
            before.iter().map(|&(f, _)| (f, engine.query(&f))).collect();
        engine.reshard(4).expect("well-formed reshard");
        for &(f, est) in &before_est {
            assert_eq!(engine.query(&f), est, "flow {f}: sketch estimate moved");
        }
        // Every pre-reshard monitored flow is still monitored, at the
        // same count, on exactly the shard the new lane map routes it to.
        let mut monitored = std::collections::HashMap::new();
        for shard in 0..engine.shards() {
            for (f, c) in engine.with_shard(shard, |a| a.top_k()).expect("live") {
                assert!(
                    monitored.insert(f, c).is_none(),
                    "flow {f} monitored on two shards"
                );
            }
        }
        for &(f, est) in &before {
            assert_eq!(monitored.get(&f), Some(&est), "flow {f}: store carry");
        }
    }

    #[test]
    fn reshard_partitions_monitored_flows_by_new_routing() {
        let mut engine = checked_engine(2048, 2);
        engine.insert_batch(&counting_batch());
        engine.reshard(3).expect("well-formed reshard");
        for shard in 0..engine.shards() {
            let owned = engine.with_shard(shard, |a| a.top_k()).expect("live shard");
            for (f, _) in owned {
                assert_eq!(
                    engine.shard_of(&f),
                    shard,
                    "flow {f} monitored off its routed shard"
                );
            }
        }
    }

    #[test]
    fn reshard_misuse_is_an_error_not_a_rollback() {
        let mut engine: ShardedEngine<u64, ParallelTopK<u64>> =
            ShardedEngine::parallel(&cfg(256, 8), 2);
        assert_eq!(
            engine.reshard(4),
            Err(ReshardError::CheckpointsDisabled),
            "no encode/restore capability captured"
        );
        engine.enable_checkpoints(4).unwrap();
        assert_eq!(engine.reshard(0), Err(ReshardError::ZeroShards));
        assert!(engine.reshard_log().is_empty(), "misuse is not logged");
        // Same-count reshard is a committed no-op.
        let report = engine.reshard(2).unwrap();
        assert!(report.committed);
        assert_eq!(engine.shards(), 2);
    }

    #[test]
    fn reshard_recovers_from_kill_during_drain_and_commits() {
        let mut engine = checked_engine(1024, 2);
        let stream = skewed_stream(20_000, 8, 400, 3);
        engine.insert_batch(&stream);
        engine.flush().expect("healthy engine");
        let applied0 = stream.iter().filter(|f| engine.shard_of(f) == 0).count() as u64;
        // The fault crosses only when the *drain* dispatches the staged
        // sub-batch below — the stream above ends exactly at the
        // threshold and `>` does not fire.
        engine.set_fault_plan(&FaultPlan::new().kill(0, applied0));
        let mut victim = 0u64;
        while engine.shard_of(&victim) != 0 {
            victim += 1;
        }
        let staged = vec![victim; 50];
        engine.insert_batch(&staged); // stays pending: far below batch_capacity
        let report = engine.reshard(4).expect("well-formed reshard");
        assert!(report.committed, "drain heals and retries: {report}");
        assert_eq!(report.recoveries.len(), 1, "exactly the scheduled kill");
        assert_eq!(report.recoveries[0].shard, 0);
        // Dark window bound: cadence is one batch, so at most the
        // staged sub-batch that died with the worker goes dark.
        assert!(
            report.dark_packets <= staged.len() as u64,
            "dark window {} exceeds the staged batch",
            report.dark_packets
        );
        assert_eq!(engine.shards(), 4);
        // Post-commit traffic lands and counts stay one-sided.
        engine.insert_batch(&staged);
        engine.flush().expect("post-reshard engine is healthy");
        let est = engine.query(&victim);
        let truth = stream.iter().filter(|&&f| f == victim).count() as u64 + 100;
        assert!(est <= truth, "over-estimated after faulted reshard");
        assert!(
            est + report.dark_packets + staged.len() as u64 >= truth,
            "lost more than the dark window: est {est}, truth {truth}"
        );
    }

    #[test]
    fn reshard_rolls_back_when_donors_cannot_fold() {
        use crate::sliding::SlidingTopK;
        // Shard 1's window span differs: a 4 -> 2 shrink must fold
        // donors 0+1, hit the window mismatch, and roll back with the
        // old topology still serving.
        let mut engine = ShardedEngine::from_fn(4, 8, |i| {
            SlidingTopK::<u64>::new(cfg(512, 8), if i == 1 { 3 } else { 2 })
        });
        engine.enable_checkpoints(4).unwrap();
        let batch: Vec<u64> = (0..4000u64).map(|i| i % 8).collect();
        engine.insert_batch(&batch);
        let report = engine.reshard(2).expect("well-formed reshard");
        assert!(!report.committed, "mismatched donors cannot commit");
        let reason = report.rollback.as_deref().expect("rollback reason");
        assert!(
            reason.contains("not fold-compatible"),
            "unexpected reason: {reason}"
        );
        assert_eq!(engine.shards(), 4, "old topology survives the rollback");
        assert_eq!(engine.reshard_log().len(), 1);
        assert!(!engine.reshard_log()[0].committed);
        // Reads and writes keep working against the pre-swap state.
        engine.insert_batch(&batch);
        for f in 0..8u64 {
            assert_eq!(engine.query(&f), 1000, "flow {f} after rollback");
        }
    }

    #[test]
    fn reshard_grow_arms_dormant_fault_specs_on_new_shards() {
        // A spec naming shard 3 of a 2-shard engine is dormant until
        // the grow creates shard 3 — then it must fire on the fresh
        // worker and be recoverable through the normal path.
        let mut engine = checked_engine(1024, 2);
        engine.set_fault_plan(&FaultPlan::new().kill(3, 0));
        let stream = skewed_stream(10_000, 8, 400, 7);
        engine.insert_batch(&stream);
        engine
            .flush()
            .expect("dormant spec must not fire at 2 shards");
        assert!(engine.poisoned_shards().is_empty());
        let report = engine.reshard(4).expect("well-formed reshard");
        assert!(report.committed);
        // First packet routed to shard 3 crosses threshold 0.
        let mut probe = 0u64;
        while engine.shard_of(&probe) != 3 {
            probe += 1;
        }
        engine.insert_batch(&vec![probe; 64]);
        assert!(engine.flush().is_err(), "armed spec fires post-grow");
        assert_eq!(engine.poisoned_shards(), vec![3]);
        let healed = engine.recover().expect("baseline checkpoint restores");
        assert_eq!(healed.len(), 1);
        assert_eq!(healed[0].shard, 3);
        engine.flush().expect("healed engine");
    }

    #[test]
    fn obs_snapshot_covers_a_faulted_resharded_run() {
        let hub = Arc::new(hk_obs::ObsHub::new());
        let mut engine = checked_engine(2048, 2);
        engine.attach_obs(hub.clone());
        engine.set_fault_plan(&FaultPlan::new().kill(0, 200));
        engine.set_auto_recover(true);
        let batch = counting_batch();
        engine.insert_batch(&batch);
        // Auto-recovery fires on the next insert; a post-stream kill is
        // healed explicitly, the CLI's finish discipline.
        engine.recover().expect("checkpoint restores the kill");
        engine.flush().expect("recovered engine is healthy");
        let report = engine.reshard(4).expect("well-formed reshard");
        assert!(report.committed, "zero-fault grow commits: {report}");
        engine.insert_batch(&batch);
        engine.flush().expect("healthy after reshard");

        let snap = engine.obs_snapshot().expect("hub attached");
        // Stage counters: every packet dispatched, all of them ingested
        // (recovery replays the checkpointed prefix, so ingest can
        // exceed dispatch — never undershoot what survived).
        assert_eq!(snap.stages.dispatch_packets, 2 * batch.len() as u64);
        let ingested: u64 = snap.shards.iter().map(|s| s.ingest_packets).sum();
        assert!(ingested > 0, "workers reported ingest");
        assert!(snap.stages.recoveries >= 1, "kill was recovered");
        assert_eq!(snap.stages.reshards, 1);
        assert!(
            snap.stages.reshard_phases >= 4,
            "drain/rebuild/swap/commit each counted: {}",
            snap.stages.reshard_phases
        );
        assert!(snap.stages.ring_pushes > 0);
        assert!(snap.stages.checkpoints > 0);
        // Histograms saw the batches and their drain latencies.
        assert!(snap.batch_packets.count > 0);
        assert!(snap.dispatch_latency_ns.count > 0);
        assert!(
            snap.dark_packets.count >= 1,
            "recovery recorded its dark window"
        );
        // Journal: the full lifecycle story, in one faulted run.
        assert!(snap.journal.count_of("worker_death") >= 1);
        assert!(snap.journal.count_of("recovery") >= 1);
        assert!(snap.journal.count_of("reshard_phase") >= 4);
        assert_eq!(snap.journal.dropped, 0);
        // Both exposition formats carry the keys CI greps for.
        let json = snap.render_json();
        assert!(json.contains("\"dispatch_packets\""), "{json}");
        assert!(json.contains("\"kind\": \"recovery\""), "{json}");
        assert!(json.contains("\"kind\": \"reshard_phase\""), "{json}");
        let prom = snap.render_prometheus();
        assert!(prom.contains("hk_recoveries 1"), "{prom}");
    }

    #[test]
    fn detached_engine_has_no_obs_and_sheds_no_instrumentation_state() {
        let mut engine = ShardedEngine::parallel(&cfg(256, 8), 2);
        assert!(engine.obs().is_none());
        assert!(engine.obs_snapshot().is_none());
        engine.insert_batch(&counting_batch());
        engine.flush().expect("healthy");
        // Attaching mid-life starts counting from here on.
        let hub = Arc::new(hk_obs::ObsHub::new());
        engine.attach_obs(hub);
        engine.insert_batch(&counting_batch());
        engine.flush().expect("healthy");
        let snap = engine.obs_snapshot().expect("attached");
        assert_eq!(snap.stages.dispatch_packets, counting_batch().len() as u64);
    }
}
