//! Insertion-outcome statistics.
//!
//! Cheap always-on counters recording which of the paper's insertion
//! cases each packet hit. Two consumers:
//!
//! * diagnostics — "why is accuracy low?" usually reads as "Case 3 decay
//!   churn is high" or "the store rejects every admission";
//! * the hardware pipeline model (`hk-hw`), which converts the case mix
//!   into SRAM access counts and cycle estimates for the Section III-E
//!   parallel-pipeline argument.
//!
//! Counters are plain `u64` increments on paths that already touch the
//! bucket, so the overhead is unmeasurable next to the hash + RNG work.

/// Per-case insertion counters for one sketch instance.
///
/// The cases are the paper's (Section III-B / IV):
///
/// * Case 1 / Situation 2 — claimed an empty bucket;
/// * Case 2 / Situation 1 — incremented a matching fingerprint;
/// * Case 3 / Situation 3 — contested a foreign bucket (with the
///   decay/replacement sub-outcomes broken out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertStats {
    /// Packets processed.
    pub packets: u64,
    /// Bucket takeovers of an empty bucket (Case 1).
    pub empty_claims: u64,
    /// Matching-fingerprint increments (Case 2) that were applied.
    pub increments: u64,
    /// Matching-fingerprint increments skipped by Optimization II.
    pub increments_gated: u64,
    /// Foreign-bucket contests (Case 3) where the decay coin was rolled.
    pub decay_rolls: u64,
    /// Decay rolls that succeeded (counter reduced by one).
    pub decays: u64,
    /// Decays that zeroed the counter and replaced the fingerprint.
    pub replacements: u64,
    /// Packets whose every mapped bucket was "large" (Section III-F).
    pub blocked: u64,
    /// Store admissions (new flow entered the top-k structure).
    pub admissions: u64,
    /// Store admissions rejected by Optimization I (estimate ≠ n_min+1).
    pub admissions_rejected: u64,
}

impl InsertStats {
    /// Fraction of packets that hit a matching bucket (the fast path).
    pub fn match_rate(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.increments as f64 / self.packets as f64
    }

    /// Fraction of decay rolls that actually decayed — high values mean
    /// the sketch is churning on small counters (mouse-dominated).
    pub fn decay_hit_rate(&self) -> f64 {
        if self.decay_rolls == 0 {
            return 0.0;
        }
        self.decays as f64 / self.decay_rolls as f64
    }

    /// Merges another instance's counters into this one.
    pub fn absorb(&mut self, other: &InsertStats) {
        self.packets += other.packets;
        self.empty_claims += other.empty_claims;
        self.increments += other.increments;
        self.increments_gated += other.increments_gated;
        self.decay_rolls += other.decay_rolls;
        self.decays += other.decays;
        self.replacements += other.replacements;
        self.blocked += other.blocked;
        self.admissions += other.admissions;
        self.admissions_rejected += other.admissions_rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = InsertStats::default();
        assert_eq!(s.match_rate(), 0.0);
        assert_eq!(s.decay_hit_rate(), 0.0);
    }

    #[test]
    fn absorb_adds_fields() {
        let mut a = InsertStats {
            packets: 10,
            decays: 3,
            ..Default::default()
        };
        let b = InsertStats {
            packets: 5,
            decays: 2,
            replacements: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.packets, 15);
        assert_eq!(a.decays, 5);
        assert_eq!(a.replacements, 1);
    }

    #[test]
    fn match_rate_computed() {
        let s = InsertStats {
            packets: 100,
            increments: 25,
            ..Default::default()
        };
        assert!((s.match_rate() - 0.25).abs() < 1e-12);
    }
}
