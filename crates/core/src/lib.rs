//! HeavyKeeper: an accurate algorithm for finding top-k elephant flows.
//!
//! This crate is a from-scratch Rust implementation of the HeavyKeeper
//! sketch (Yang et al., USENIX ATC 2018). HeavyKeeper keeps a small hash
//! table of `(fingerprint, counter)` buckets and applies
//! *count-with-exponential-decay*: a packet whose flow is not the one held
//! in its bucket decays the bucket's counter with probability `b^{-C}`,
//! so mouse flows are washed out quickly while elephant flows, whose
//! counters grow large, become essentially immovable.
//!
//! Three variants are provided, exactly as in the paper:
//!
//! * [`BasicTopK`] — Section III-C: decay in all `d` mapped buckets, plain
//!   min-heap admission (no optimizations). This is the version the
//!   appendix error bound (Theorem 5) is stated for.
//! * [`ParallelTopK`] — Section III-E ("Hardware Parallel version"):
//!   adds Optimization I (fingerprint-collision detection: only admit a
//!   new flow to the top-k structure when `n̂ == n_min + 1`) and
//!   Optimization II (selective increment: don't grow a matching bucket
//!   past `n_min` for flows outside the top-k structure). Each array's
//!   operation is independent, hence hardware-parallel.
//! * [`MinimumTopK`] — Section IV ("Software Minimum version"): per
//!   packet, touch at most one bucket — increment a matching bucket,
//!   else fill the first empty bucket, else decay only the *smallest*
//!   mapped counter ("minimum decay").
//!
//! The optional dynamic expansion of Section III-F (a global counter of
//! blocked insertions that triggers adding a `d+1`-th array) is available
//! through [`config::ExpansionPolicy`].
//!
//! # Quickstart
//!
//! ```
//! use heavykeeper::{HkConfig, ParallelTopK};
//! use hk_common::TopKAlgorithm;
//!
//! // 2 arrays x 256 buckets, track top-8 flows.
//! let cfg = HkConfig::builder().arrays(2).width(256).k(8).seed(1).build();
//! let mut hk = ParallelTopK::<u64>::new(cfg);
//!
//! // A skewed stream: flow 7 is the elephant.
//! for i in 0..10_000u64 {
//!     hk.insert(&7);
//!     hk.insert(&(i % 500 + 100));
//! }
//! let top = hk.top_k();
//! assert_eq!(top[0].0, 7);
//! // No over-estimation (Theorem 2): the estimate cannot exceed 10_000.
//! assert!(top[0].1 <= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basic;
pub mod bucket;
pub mod change;
pub mod collector;
pub mod config;
pub mod decay;
pub mod fault;
pub mod merge;
pub mod minimum;
pub mod parallel;
pub mod reshard;
pub mod sharded;
pub mod sketch;
pub mod sliding;
pub mod spsc;
pub mod stats;
pub mod store;
pub mod weighted;
pub mod wire;

pub use basic::BasicTopK;
pub use change::{ChangeKind, HeavyChange, HeavyChangeDetector};
pub use collector::{AggregationRule, Collector, WindowSubmit, WindowSubmitError};
pub use config::{ExpansionPolicy, HkConfig, HkConfigBuilder, StoreKind};
pub use decay::DecayFn;
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use merge::{MergeError, MergeMode};
pub use minimum::MinimumTopK;
pub use parallel::ParallelTopK;
pub use reshard::{ReshardError, ReshardReport};
pub use sharded::{
    BackpressurePolicy, RecoverError, RecoveryReport, ShardPoisoned, ShardedEngine,
    ShardedParallelTopK,
};
pub use sketch::HkSketch;
pub use sliding::SlidingTopK;
pub use stats::InsertStats;
pub use weighted::WeightedTopK;
pub use wire::{FrameKind, WindowFrame, WireError};
