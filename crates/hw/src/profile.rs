//! Device profiles: memory technologies and pipeline parameters.

/// Where the bucket arrays live.
///
/// Latency defaults come from the paper's own figures (Section I):
/// "on-chip memory such as SRAM whose latency is around 1ns ... in
/// contrast to a latency of around 50ns when off-chip DRAM is used".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryTech {
    /// On-chip SRAM (the deployment the paper targets).
    Sram {
        /// Access latency in nanoseconds (paper: ~1).
        latency_ns: f64,
    },
    /// Off-chip DRAM (the contrast case).
    Dram {
        /// Access latency in nanoseconds (paper: ~50).
        latency_ns: f64,
    },
}

impl MemoryTech {
    /// The paper's on-chip SRAM figure (1 ns).
    pub fn sram() -> Self {
        Self::Sram { latency_ns: 1.0 }
    }

    /// The paper's off-chip DRAM figure (50 ns).
    pub fn dram() -> Self {
        Self::Dram { latency_ns: 50.0 }
    }

    /// Access latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        match *self {
            Self::Sram { latency_ns } | Self::Dram { latency_ns } => latency_ns,
        }
    }
}

/// A device the sketch is deployed on.
///
/// The model is deliberately small: a packet's cost is its *dependent*
/// memory stages (reads that must complete before the dependent write
/// can issue) times the memory latency, plus fixed per-packet logic.
/// Independent accesses to different arrays overlap when the device has
/// one memory unit (bank/port) per array — the Section III-E picture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Bucket-array memory.
    pub memory: MemoryTech,
    /// True when each of the `d` arrays has its own bank/port so that
    /// per-array accesses proceed in parallel (FPGA/ASIC/P4 pipelines);
    /// false for a single-ported memory (e.g. one DRAM channel).
    pub banked_arrays: bool,
    /// Fixed per-packet logic latency (hash + decay table + compare), ns.
    pub logic_ns: f64,
    /// True when the pipeline can overlap successive packets so that the
    /// *initiation interval* (time between accepting two packets), not
    /// the end-to-end latency, bounds throughput. Hardware pipelines
    /// can; a simple software loop cannot.
    pub pipelined: bool,
}

impl DeviceProfile {
    /// An ASIC/P4-style switch pipeline: banked 1 ns SRAM, deeply
    /// pipelined, ~1 ns of logic per stage.
    pub fn switch_pipeline() -> Self {
        Self {
            memory: MemoryTech::sram(),
            banked_arrays: true,
            logic_ns: 1.0,
            pipelined: true,
        }
    }

    /// A server CPU keeping the sketch in off-chip DRAM, executing one
    /// packet's accesses before the next (no cross-packet overlap).
    pub fn cpu_dram() -> Self {
        Self {
            memory: MemoryTech::dram(),
            banked_arrays: false,
            logic_ns: 5.0,
            pipelined: false,
        }
    }

    /// A server CPU whose working set fits in cache — the approximation
    /// behind the paper's software throughput experiments (Figure 33).
    pub fn cpu_cached() -> Self {
        Self {
            memory: MemoryTech::Sram { latency_ns: 2.0 },
            banked_arrays: false,
            logic_ns: 5.0,
            pipelined: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_figures() {
        assert_eq!(MemoryTech::sram().latency_ns(), 1.0);
        assert_eq!(MemoryTech::dram().latency_ns(), 50.0);
    }

    #[test]
    fn presets_are_distinct() {
        let sw = DeviceProfile::switch_pipeline();
        let cpu = DeviceProfile::cpu_dram();
        assert!(sw.pipelined && sw.banked_arrays);
        assert!(!cpu.pipelined && !cpu.banked_arrays);
        assert!(cpu.memory.latency_ns() > sw.memory.latency_ns());
    }
}
