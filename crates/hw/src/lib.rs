//! Hardware pipeline cost model for HeavyKeeper.
//!
//! The paper makes two hardware claims this crate makes quantitative:
//!
//! 1. **Section I**: line-rate measurement must run from on-chip SRAM
//!    ("latency is around 1ns"), not DRAM ("around 50ns") — memory
//!    placement, not arithmetic, decides feasibility.
//! 2. **Sections III-E / IV**: in the *Hardware Parallel* version "the
//!    operation in each array can be implemented in parallel on hardware
//!    platforms (e.g., FPGA, ASIC, or P4Switch)", while the *Software
//!    Minimum* version improves accuracy "at the cost of sacrificing the
//!    parallel property" — its single update depends on comparing all
//!    `d` mapped counters, serializing the read→decide→write chain.
//!
//! The model is analytical, not cycle-accurate: it converts a measured
//! per-packet operation mix ([`heavykeeper::InsertStats`] from a real
//! software run) into memory accesses and dependent pipeline stages,
//! then into a line-rate bound under a device profile. That is the same
//! granularity the paper argues at (counts of SRAM accesses and their
//! dependencies), and it is enough to reproduce the claims' *shape*:
//! who pipelines to line rate on which memory, and what the Minimum
//! version's accuracy costs in initiation interval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod profile;

pub use model::{packet_cost, InsertDiscipline, PacketCost};
pub use profile::{DeviceProfile, MemoryTech};
