//! The per-packet cost model.
//!
//! A packet's hardware cost has two ingredients:
//!
//! * **How many memory accesses it makes** — measured, not assumed: the
//!   average read/write mix comes from a real run's
//!   [`InsertStats`] (writes only happen on Case 1 claims, applied
//!   Case 2 increments, and successful decays, so the write rate is
//!   workload-dependent).
//! * **Which accesses depend on which** — the property Sections III-E
//!   and IV argue about. The Parallel version's per-array
//!   read→decide→write chains are mutually independent, so a banked
//!   pipeline overlaps them and accepts one packet per stage slot. The
//!   Minimum version must *join* all `d` reads before its single write
//!   (the write target is the first-smallest counter), which a
//!   feed-forward switch pipeline can only express by recirculating the
//!   packet — doubling its initiation interval.

use crate::profile::DeviceProfile;
use heavykeeper::InsertStats;

/// Which insertion discipline is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertDiscipline {
    /// Hardware Parallel version (Section III-E): independent per-array
    /// read-modify-write.
    Parallel {
        /// Number of arrays `d`.
        d: usize,
    },
    /// Software Minimum version (Section IV): read all `d`, then write
    /// at most one bucket chosen by a cross-array comparison.
    Minimum {
        /// Number of arrays `d`.
        d: usize,
    },
    /// A CM-sketch-style count-all update: unconditional read+write in
    /// every array (the paper's count-all baseline, for contrast).
    CountAll {
        /// Number of arrays `d`.
        d: usize,
    },
}

/// The modeled per-packet cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketCost {
    /// Average bucket reads per packet.
    pub reads: f64,
    /// Average bucket writes per packet (from the measured case mix).
    pub writes: f64,
    /// Depth of the dependent memory chain when arrays are banked
    /// (read stage + dependent write stage).
    pub memory_stages: u32,
    /// Pipeline passes needed per packet (1 = single pass; 2 = the
    /// Minimum version's read-join-write recirculation).
    pub recirculations: u32,
}

/// Derives the per-packet cost of a discipline from a measured run.
///
/// `stats.packets` may be 0 (e.g. modeling before any traffic); the
/// write rate is then taken as the discipline's worst case.
pub fn packet_cost(discipline: InsertDiscipline, stats: &InsertStats) -> PacketCost {
    // Writes happen on: empty claims, applied increments, successful
    // decays (the decrement is a write; a replacement is the same write
    // with a new fingerprint). Gated increments and failed rolls are
    // read-only.
    let measured_writes = |worst: f64| {
        if stats.packets == 0 {
            worst
        } else {
            (stats.empty_claims + stats.increments + stats.decays) as f64 / stats.packets as f64
        }
    };
    match discipline {
        InsertDiscipline::Parallel { d } => PacketCost {
            reads: d as f64,
            writes: measured_writes(d as f64),
            memory_stages: 2,
            recirculations: 1,
        },
        InsertDiscipline::Minimum { d } => PacketCost {
            reads: d as f64,
            // At most one bucket is written per packet by construction.
            writes: measured_writes(1.0).min(1.0),
            memory_stages: 2,
            recirculations: 2,
        },
        InsertDiscipline::CountAll { d } => PacketCost {
            reads: d as f64,
            writes: d as f64,
            memory_stages: 2,
            recirculations: 1,
        },
    }
}

impl PacketCost {
    /// The line-rate bound in millions of packets per second on the
    /// given device.
    ///
    /// * Pipelined devices are bounded by the initiation interval: one
    ///   stage slot (`max(memory latency, logic)`) per recirculation.
    /// * Non-pipelined devices pay the full per-packet latency: logic
    ///   plus every memory access, overlapped across arrays only when
    ///   the memory is banked.
    ///
    /// This is an upper bound — it ignores software overheads (RNG,
    /// heap bookkeeping), which is why Figure 33's measured Mps sit
    /// well below the `cpu_cached` bound.
    pub fn throughput_mpps(&self, dev: &DeviceProfile) -> f64 {
        let mem = dev.memory.latency_ns();
        if dev.pipelined {
            let slot = mem.max(dev.logic_ns);
            return 1000.0 / (slot * self.recirculations as f64);
        }
        let mem_time = if dev.banked_arrays {
            // Reads overlap across banks; dependent writes overlap too.
            mem * self.memory_stages as f64
        } else {
            (self.reads + self.writes) * mem
        };
        1000.0 / (dev.logic_ns + mem_time)
    }

    /// Total memory accesses per packet.
    pub fn accesses(&self) -> f64 {
        self.reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DeviceProfile, MemoryTech};

    fn stats(packets: u64, claims: u64, incs: u64, decays: u64) -> InsertStats {
        InsertStats {
            packets,
            empty_claims: claims,
            increments: incs,
            decays,
            ..Default::default()
        }
    }

    #[test]
    fn write_rate_comes_from_measured_mix() {
        // 1000 packets, d=2: 100 claims + 700 increments + 200 decays
        // = 1.0 writes/packet.
        let s = stats(1000, 100, 700, 200);
        let c = packet_cost(InsertDiscipline::Parallel { d: 2 }, &s);
        assert_eq!(c.reads, 2.0);
        assert!((c.writes - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_use_worst_case() {
        let s = InsertStats::default();
        let par = packet_cost(InsertDiscipline::Parallel { d: 3 }, &s);
        assert_eq!(par.writes, 3.0);
        let min = packet_cost(InsertDiscipline::Minimum { d: 3 }, &s);
        assert_eq!(min.writes, 1.0);
    }

    #[test]
    fn minimum_writes_capped_at_one() {
        let s = stats(10, 100, 100, 100); // absurd mix
        let c = packet_cost(InsertDiscipline::Minimum { d: 2 }, &s);
        assert_eq!(c.writes, 1.0);
    }

    #[test]
    fn recirculation_halves_pipelined_rate() {
        // The Section IV claim, quantified: same device, same stats —
        // the Minimum version runs at half the Parallel line rate.
        let s = stats(1000, 10, 800, 50);
        let dev = DeviceProfile::switch_pipeline();
        let par = packet_cost(InsertDiscipline::Parallel { d: 2 }, &s).throughput_mpps(&dev);
        let min = packet_cost(InsertDiscipline::Minimum { d: 2 }, &s).throughput_mpps(&dev);
        assert!((par / min - 2.0).abs() < 1e-9, "par {par} vs min {min}");
    }

    #[test]
    fn sram_vs_dram_is_the_paper_gap() {
        // Section I: 1ns vs 50ns. On a non-pipelined, unbanked device
        // the memory term scales by exactly 50x.
        let s = stats(1000, 10, 800, 50);
        let c = packet_cost(InsertDiscipline::Parallel { d: 2 }, &s);
        let mut dev = DeviceProfile::cpu_dram();
        let slow = c.throughput_mpps(&dev);
        dev.memory = MemoryTech::Sram { latency_ns: 1.0 };
        let fast = c.throughput_mpps(&dev);
        assert!(fast / slow > 10.0, "SRAM {fast} vs DRAM {slow}");
    }

    #[test]
    fn count_all_writes_every_array() {
        let s = stats(1000, 0, 500, 0);
        let cm = packet_cost(InsertDiscipline::CountAll { d: 3 }, &s);
        assert_eq!(cm.writes, 3.0);
        assert_eq!(cm.accesses(), 6.0);
        // HeavyKeeper-Parallel writes less than count-all on the same
        // stats (reads equal, writes measured < unconditional).
        let hk = packet_cost(InsertDiscipline::Parallel { d: 3 }, &s);
        assert!(hk.writes < cm.writes);
    }

    #[test]
    fn banking_overlaps_reads() {
        let s = stats(1000, 10, 800, 50);
        let c = packet_cost(InsertDiscipline::Parallel { d: 4 }, &s);
        let unbanked = DeviceProfile {
            memory: MemoryTech::sram(),
            banked_arrays: false,
            logic_ns: 1.0,
            pipelined: false,
        };
        let banked = DeviceProfile {
            banked_arrays: true,
            ..unbanked
        };
        assert!(c.throughput_mpps(&banked) > c.throughput_mpps(&unbanked));
    }

    #[test]
    fn pipelining_hides_access_count() {
        // On the switch pipeline, throughput depends on the slot and
        // recirculation count, not on d.
        let s = stats(1000, 10, 800, 50);
        let dev = DeviceProfile::switch_pipeline();
        let d2 = packet_cost(InsertDiscipline::Parallel { d: 2 }, &s).throughput_mpps(&dev);
        let d8 = packet_cost(InsertDiscipline::Parallel { d: 8 }, &s).throughput_mpps(&dev);
        assert_eq!(d2, d8);
    }
}
