//! The hardware model driven by *measured* operation mixes: run real
//! traces through the software implementations, feed their InsertStats
//! into the cost model, and check the paper's hardware claims hold with
//! workload-realistic write rates.

use heavykeeper::{HkConfig, MinimumTopK, ParallelTopK};
use hk_common::TopKAlgorithm;
use hk_hw::{packet_cost, DeviceProfile, InsertDiscipline};
use hk_traffic::presets::campus_like;

fn run_both() -> (heavykeeper::InsertStats, heavykeeper::InsertStats) {
    let trace = campus_like(500, 3); // 20k packets
    let cfg = HkConfig::builder()
        .memory_bytes(16 * 1024)
        .k(100)
        .seed(7)
        .build();
    let mut par = ParallelTopK::new(cfg.clone());
    let mut min = MinimumTopK::new(cfg);
    par.insert_all(&trace.packets);
    min.insert_all(&trace.packets);
    (*par.stats(), *min.stats())
}

#[test]
fn minimum_version_touches_fewer_buckets() {
    let (par, min) = run_both();
    let par_cost = packet_cost(InsertDiscipline::Parallel { d: 2 }, &par);
    let min_cost = packet_cost(InsertDiscipline::Minimum { d: 2 }, &min);
    // Same reads (d probes each), but the Minimum version writes at
    // most one bucket per packet while Parallel may write several.
    assert_eq!(par_cost.reads, min_cost.reads);
    assert!(min_cost.writes <= 1.0);
    assert!(
        par_cost.writes >= min_cost.writes,
        "parallel {} vs minimum {}",
        par_cost.writes,
        min_cost.writes
    );
}

#[test]
fn switch_pipeline_reaches_line_rate_only_for_parallel() {
    // A 100 GbE port at minimum frame size is ~149 Mpps. The Parallel
    // version's single-pass pipeline clears it with the paper's 1 ns
    // SRAM; the Minimum version's recirculation halves headroom.
    let (par, min) = run_both();
    let dev = DeviceProfile::switch_pipeline();
    let par_mpps = packet_cost(InsertDiscipline::Parallel { d: 2 }, &par).throughput_mpps(&dev);
    let min_mpps = packet_cost(InsertDiscipline::Minimum { d: 2 }, &min).throughput_mpps(&dev);
    assert!(par_mpps >= 149.0, "parallel bound {par_mpps} Mpps");
    assert!((par_mpps / min_mpps - 2.0).abs() < 1e-9);
}

#[test]
fn dram_placement_cannot_sustain_line_rate() {
    // The Section I argument: at ~50 ns per access, even the cheapest
    // discipline is bounded far below 100 GbE line rate on a
    // non-pipelined DRAM path.
    let (_, min) = run_both();
    let dev = DeviceProfile::cpu_dram();
    let mpps = packet_cost(InsertDiscipline::Minimum { d: 2 }, &min).throughput_mpps(&dev);
    assert!(
        mpps < 10.0,
        "DRAM bound {mpps} Mpps should be single digits"
    );
}

#[test]
fn cached_cpu_bound_dominates_measured_figure33_rates() {
    // The model is an upper bound: the paper's software numbers
    // (~15 Mps) and ours (~12 Mps) must sit below the cached-CPU bound.
    let (par, _) = run_both();
    let dev = DeviceProfile::cpu_cached();
    let bound = packet_cost(InsertDiscipline::Parallel { d: 2 }, &par).throughput_mpps(&dev);
    assert!(
        bound > 15.0,
        "bound {bound} must exceed measured software rates"
    );
}

#[test]
fn heavykeeper_writes_less_than_count_all() {
    // The count-all strategy writes every array on every packet; the
    // measured HeavyKeeper mix writes only on claims/increments/decays.
    let (par, _) = run_both();
    let hk = packet_cost(InsertDiscipline::Parallel { d: 2 }, &par);
    let cm = packet_cost(InsertDiscipline::CountAll { d: 2 }, &par);
    assert!(hk.accesses() < cm.accesses());
}
